"""Tests for the ASCII bar-chart renderer."""

import pytest

from repro.cli import main
from repro.experiments.common import FigureResult
from repro.harness.charts import _bar, bar_chart


class TestBar:
    def test_full_scale(self):
        assert _bar(10, 10, 8) == "████████"

    def test_half(self):
        assert _bar(5, 10, 8) == "████"

    def test_fractional_eighths(self):
        bar = _bar(1, 16, 8)  # half a character
        assert bar == "▌"

    def test_zero(self):
        assert _bar(0, 10, 8) == ""

    def test_zero_scale_safe(self):
        assert _bar(5, 0, 8) == ""


class TestBarChart:
    def _rows(self):
        return {
            "row1": {"a": 4.0, "b": 2.0},
            "row2": {"a": 1.0},
        }

    def test_contains_values_and_labels(self):
        out = bar_chart(["a", "b"], self._rows(), width=8)
        assert "row1" in out and "row2" in out
        assert "4.000" in out and "2.000" in out

    def test_scaled_to_max(self):
        out = bar_chart(["a", "b"], self._rows(), width=8)
        lines = [l for l in out.splitlines() if "4.000" in l]
        assert "████████" in lines[0]  # the max fills the width

    def test_missing_cells_skipped(self):
        out = bar_chart(["a", "b"], self._rows(), width=8)
        row2_lines = out.split("row2")[1]
        assert "b" not in row2_lines.replace("b", "b")  # series b absent
        assert "1.000" in row2_lines

    def test_empty(self):
        assert bar_chart([], {}, width=8) == ""


class TestFigureChart:
    def test_figure_result_chart(self):
        r = FigureResult("figX", "title", series=[])
        r.add("bench", "s1", 3.0)
        out = r.chart(width=10)
        assert "figX" in out and "bench" in out and "3.000" in out

    def test_cli_chart_flag(self, capsys):
        assert main(["run", "fig4b", "--scale", "tiny", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "█" in out
