"""Unit tests for the loop-nest IR (loops, arrays, references, programs)."""

import pytest

from repro.compiler import (
    Array,
    ArrayRef,
    Loop,
    LoopNest,
    Program,
    ScalarBlock,
    nest,
    var,
)
from repro.errors import CompilerError

i, j, k = var("i"), var("j"), var("k")


class TestLoop:
    def test_trip_count(self):
        assert Loop("i", 0, 10).trip_count == 10
        assert Loop("i", 3, 10).trip_count == 7
        assert Loop("i", 0, 10, step=3).trip_count == 4

    def test_empty_loop(self):
        assert Loop("i", 5, 5).trip_count == 0

    def test_values_order(self):
        assert Loop("i", 1, 8, step=3).values().tolist() == [1, 4, 7]

    def test_negative_step_rejected(self):
        with pytest.raises(CompilerError):
            Loop("i", 0, 10, step=-1)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(CompilerError):
            Loop("i", 10, 0)

    def test_opaque_flag_defaults_false(self):
        assert not Loop("i", 0, 4).opaque
        assert Loop("i", 0, 4, opaque=True).opaque


class TestArray:
    def test_column_major_strides(self):
        assert Array("A", (4, 5, 6)).strides() == (1, 4, 20)

    def test_sizes(self):
        a = Array("A", (10, 3))
        assert a.elements == 30
        assert a.size_bytes == 240

    def test_element_size(self):
        assert Array("A", (8,), element_size=4).size_bytes == 32

    def test_bad_shape_rejected(self):
        with pytest.raises(CompilerError):
            Array("A", ())
        with pytest.raises(CompilerError):
            Array("A", (0, 4))

    def test_bad_element_size_rejected(self):
        with pytest.raises(CompilerError):
            Array("A", (4,), element_size=0)


class TestArrayRef:
    def test_int_subscripts_coerced(self):
        ref = ArrayRef("A", (0, 3))
        assert ref.subscripts[0].is_constant()
        assert ref.subscripts[1].const == 3

    def test_no_subscripts_rejected(self):
        with pytest.raises(CompilerError):
            ArrayRef("A", ())

    def test_indirect_requires_single_subscript(self):
        with pytest.raises(CompilerError):
            ArrayRef("A", (i, j), indirect=(0, 1))

    def test_indirect_table(self):
        ref = ArrayRef("A", (i,), indirect=(4, 2, 0))
        assert ref.indirect_table().tolist() == [4, 2, 0]

    def test_indirect_table_on_direct_ref_raises(self):
        with pytest.raises(CompilerError):
            ArrayRef("A", (i,)).indirect_table()


class TestLoopNest:
    def test_counts(self):
        n = nest(
            [Loop("i", 0, 3), Loop("j", 0, 4)],
            body=[ArrayRef("A", (j, i)), ArrayRef("A", (j, i))],
            pre=[ArrayRef("Y", (i,))],
            post=[ArrayRef("Y", (i,), is_write=True)],
        )
        assert n.iterations == 12
        assert n.outer_iterations == 3
        assert n.references == 12 * 2 + 3 * 2

    def test_all_refs_order(self):
        pre = ArrayRef("Y", (i,))
        body = ArrayRef("A", (j, i))
        post = ArrayRef("Y", (i,), is_write=True)
        n = nest([Loop("i", 0, 2), Loop("j", 0, 2)], [body], [pre], [post])
        assert n.all_refs == (pre, body, post)

    def test_needs_loops_and_body(self):
        with pytest.raises(CompilerError):
            LoopNest((), (ArrayRef("A", (i,)),))
        with pytest.raises(CompilerError):
            nest([Loop("i", 0, 2)], [])

    def test_duplicate_indices_rejected(self):
        with pytest.raises(CompilerError):
            nest([Loop("i", 0, 2), Loop("i", 0, 2)], [ArrayRef("A", (i,))])

    def test_pre_post_cannot_use_innermost_index(self):
        with pytest.raises(CompilerError):
            nest(
                [Loop("i", 0, 2), Loop("j", 0, 2)],
                body=[ArrayRef("A", (j, i))],
                pre=[ArrayRef("Y", (j,))],
            )

    def test_innermost_and_outer(self):
        n = nest([Loop("i", 0, 2), Loop("j", 0, 3)], [ArrayRef("A", (j, i))])
        assert n.innermost.index == "j"
        assert [l.index for l in n.outer_loops] == ["i"]


class TestScalarBlock:
    def test_validation(self):
        with pytest.raises(CompilerError):
            ScalarBlock((), count=4)
        with pytest.raises(CompilerError):
            ScalarBlock((0,), count=-1)


class TestProgram:
    def _program(self, align=32):
        arrays = [Array("A", (4, 4)), Array("B", (10,))]
        body = nest([Loop("i", 0, 4), Loop("j", 0, 4)], [ArrayRef("A", (j, i))])
        return Program("p", arrays, [body], align=align)

    def test_layout_contiguous_and_aligned(self):
        p = self._program(align=32)
        bases = p.layout()
        assert bases["A"] == 0
        # A is 128 bytes; B starts at the next 32-byte boundary.
        assert bases["B"] == 128
        assert bases["B"] % 32 == 0

    def test_layout_alignment_pads(self):
        arrays = [Array("A", (3,)), Array("B", (4,))]  # A = 24 bytes
        body = nest([Loop("i", 0, 3)], [ArrayRef("A", (i,))])
        p = Program("p", arrays, [body], align=32)
        assert p.layout()["B"] == 32

    def test_layout_cached(self):
        p = self._program()
        assert p.layout() is p.layout()

    def test_undeclared_array_rejected(self):
        arrays = [Array("A", (4,))]
        body = nest([Loop("i", 0, 4)], [ArrayRef("Missing", (i,))])
        with pytest.raises(CompilerError):
            Program("p", arrays, [body])

    def test_undeclared_pre_ref_rejected(self):
        arrays = [Array("A", (4, 4))]
        body = nest(
            [Loop("i", 0, 4), Loop("j", 0, 4)],
            [ArrayRef("A", (j, i))],
            pre=[ArrayRef("Missing", (i,))],
        )
        with pytest.raises(CompilerError):
            Program("p", arrays, [body])

    def test_duplicate_array_rejected(self):
        with pytest.raises(CompilerError):
            Program(
                "p",
                [Array("A", (4,)), Array("A", (4,))],
                [nest([Loop("i", 0, 4)], [ArrayRef("A", (i,))])],
            )

    def test_bad_repeat_rejected(self):
        with pytest.raises(CompilerError):
            Program("p", [Array("A", (4,))],
                    [nest([Loop("i", 0, 4)], [ArrayRef("A", (i,))])],
                    repeat=0)

    def test_reference_count_includes_blocks(self):
        arrays = [Array("A", (4,))]
        body = nest([Loop("i", 0, 4)], [ArrayRef("A", (i,))])
        block = ScalarBlock((1 << 20,), count=7)
        p = Program("p", arrays, [body, block])
        assert p.references == 4 + 7
