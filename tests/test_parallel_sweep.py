"""Parallel dispatch and result caching of the sweep engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.spec import CacheSpec
from repro.errors import ConfigError
from repro.harness.parallel import (
    ResultCache,
    payload_to_result,
    resolve_jobs,
    result_to_payload,
)
from repro.harness.runner import run_sweep
from repro.sim.geometry import CacheGeometry
from repro.sim.standard import StandardCache

from conftest import make_trace


def _suite(n_traces=3, length=400, seed=7):
    """Small deterministic mixed-stride traces."""
    rng = np.random.default_rng(seed)
    traces = {}
    for k in range(n_traces):
        stream = np.arange(length) * 8 % 4096
        noise = rng.integers(0, 8192, size=length) & ~7
        addresses = np.where(np.arange(length) % 3 == 0, noise, stream)
        traces[f"t{k}"] = make_trace(
            addresses,
            temporal=(addresses % 64 == 0),
            spatial=(addresses % 16 == 0),
            name=f"t{k}",
        )
    return traces


CONFIGS = {
    "Standard": CacheSpec.of("standard"),
    "Soft": CacheSpec.of("soft"),
    "Victim": CacheSpec.of("victim"),
}


class TestParallelEquivalence:
    def test_parallel_equals_serial(self, tmp_path):
        traces = _suite()
        serial = run_sweep(traces, CONFIGS, jobs=1, cache=None)
        parallel = run_sweep(traces, CONFIGS, jobs=2, cache=None)
        assert serial.results.keys() == parallel.results.keys()
        for name in traces:
            assert serial.results[name] == parallel.results[name]

    def test_row_and_column_order_is_submission_order(self):
        traces = _suite()
        sweep = run_sweep(traces, CONFIGS, jobs=2, cache=None)
        assert list(sweep.results) == list(traces)
        assert sweep.config_order == list(CONFIGS)
        for row in sweep.metric("amat").values():
            assert list(row) == list(CONFIGS)

    def test_legacy_factories_still_accepted(self):
        traces = _suite(n_traces=1)
        factories = {
            "lambda": lambda: StandardCache(CacheGeometry(8 * 1024, 32, 1)),
            "spec": CacheSpec.of("standard_cache"),
        }
        sweep = run_sweep(traces, factories, cache=None)
        row = sweep.results["t0"]
        assert row["lambda"].misses == row["spec"].misses


class TestResultCache:
    def test_second_run_hits_for_every_cell(self, tmp_path):
        traces = _suite()
        store = ResultCache(tmp_path)
        cold = run_sweep(traces, CONFIGS, cache=store)
        assert store.hits == 0
        assert len(store) == len(traces) * len(CONFIGS)

        warm_store = ResultCache(tmp_path)
        warm = run_sweep(traces, CONFIGS, cache=warm_store)
        assert warm_store.hits == len(traces) * len(CONFIGS)
        assert warm_store.misses == 0
        for name in traces:
            assert cold.results[name] == warm.results[name]

    def test_spec_change_invalidates(self, tmp_path):
        traces = _suite(n_traces=1)
        store = ResultCache(tmp_path)
        run_sweep(traces, {"soft": CacheSpec.of("soft")}, cache=store)

        probe = ResultCache(tmp_path)
        run_sweep(
            traces,
            {"soft": CacheSpec.of("soft", virtual_line_size=128)},
            cache=probe,
        )
        assert probe.hits == 0
        assert probe.misses == 1

    def test_trace_change_invalidates(self, tmp_path):
        store = ResultCache(tmp_path)
        run_sweep(_suite(n_traces=1, seed=1), {"s": CONFIGS["Standard"]}, cache=store)
        probe = ResultCache(tmp_path)
        run_sweep(_suite(n_traces=1, seed=2), {"s": CONFIGS["Standard"]}, cache=probe)
        assert probe.hits == 0

    def test_cached_result_is_lossless(self):
        traces = _suite(n_traces=1)
        sweep = run_sweep(traces, {"s": CONFIGS["Soft"]}, cache=None)
        result = sweep.results["t0"]["s"]
        assert payload_to_result(result_to_payload(result)) == result

    def test_corrupt_entry_falls_back_to_simulation(self, tmp_path):
        traces = _suite(n_traces=1)
        store = ResultCache(tmp_path)
        run_sweep(traces, {"s": CONFIGS["Standard"]}, cache=store)
        for entry in tmp_path.glob("*/*/*.json"):
            entry.write_text("{not json")
        probe = ResultCache(tmp_path)
        sweep = run_sweep(traces, {"s": CONFIGS["Standard"]}, cache=probe)
        assert probe.hits == 0
        assert sweep.results["t0"]["s"].refs == len(traces["t0"])

    def test_clear(self, tmp_path):
        store = ResultCache(tmp_path)
        run_sweep(_suite(n_traces=1), CONFIGS, cache=store)
        assert len(store) == len(CONFIGS)
        assert store.clear() == len(CONFIGS)
        assert len(store) == 0


class TestCachePrune:
    def test_size_bytes_counts_entries(self, tmp_path):
        store = ResultCache(tmp_path)
        assert store.size_bytes() == 0
        run_sweep(_suite(n_traces=1), CONFIGS, cache=store)
        assert store.size_bytes() > 0

    def test_prune_to_zero_clears_everything(self, tmp_path):
        store = ResultCache(tmp_path)
        run_sweep(_suite(n_traces=1), CONFIGS, cache=store)
        before = store.size_bytes()
        removed, removed_bytes = store.prune(0)
        assert removed == len(CONFIGS)
        assert removed_bytes == before
        assert len(store) == 0 and store.size_bytes() == 0

    def test_prune_is_lru_by_mtime(self, tmp_path):
        import os

        store = ResultCache(tmp_path)
        run_sweep(_suite(n_traces=1), CONFIGS, cache=store)
        entries = sorted(tmp_path.glob("*/*/*.json"))
        assert len(entries) == 3
        for age, entry in zip((300, 200, 100), entries):
            os.utime(entry, (1_000_000 - age, 1_000_000 - age))
        keep = entries[2].stat().st_size  # newest entry
        store.prune(keep)
        survivors = set(tmp_path.glob("*/*/*.json"))
        assert survivors == {entries[2]}

    def test_get_refreshes_mtime_for_lru(self, tmp_path):
        import os

        traces = _suite(n_traces=1)
        store = ResultCache(tmp_path)
        run_sweep(traces, {"s": CONFIGS["Standard"]}, cache=store)
        (entry,) = tmp_path.glob("*/*/*.json")
        os.utime(entry, (1, 1))
        from repro.sim.engine import resolve_engine

        key = ResultCache.key(
            traces["t0"].fingerprint(), CONFIGS["Standard"].fingerprint(),
            resolve_engine(None),
        )
        assert store.get(key) is not None
        assert entry.stat().st_mtime > 1

    def test_negative_limit_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            ResultCache(tmp_path).prune(-1)

    def test_cli_prune(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(
            ["simulate", "--benchmark", "MV", "--config", "soft",
             "--scale", "tiny"]
        ) == 0
        capsys.readouterr()
        assert main(["cache", "prune", "--max-bytes", "0"]) == 0
        assert "pruned 1" in capsys.readouterr().out
        assert main(["cache", "prune"]) == 2
        assert "--max-bytes" in capsys.readouterr().err

    def test_cli_parse_size(self):
        from repro.cli import _parse_size
        from repro.errors import ReproError

        assert _parse_size("1024") == 1024
        assert _parse_size("4K") == 4096
        assert _parse_size("2KiB") == 2048
        assert _parse_size("1.5M") == 3 << 19
        assert _parse_size("2GB") == 2 << 30
        with pytest.raises(ReproError):
            _parse_size("lots")
        with pytest.raises(ReproError):
            _parse_size("-1K")


class TestStreamCacheSharing:
    def test_store_backed_stream_hits_in_memory_entries(self, tmp_path):
        """A v2 store and the in-memory trace share cache entries:
        chunk fingerprints roll up to the identical trace fingerprint,
        so re-running a sweep out-of-core costs zero simulations."""
        from repro.memtrace import TraceStore
        from repro.stream import TraceStream

        traces = _suite(n_traces=1)
        store = ResultCache(tmp_path / "results")
        run_sweep(traces, CONFIGS, cache=store)

        root = tmp_path / "t0.store"
        TraceStore.save(traces["t0"], root, chunk_refs=128)
        stream = TraceStream.open(root)
        probe = ResultCache(tmp_path / "results")
        warm = run_sweep({"t0": stream}, CONFIGS, cache=probe)
        assert probe.hits == len(CONFIGS)
        assert probe.misses == 0
        for config in CONFIGS:
            assert warm.results["t0"][config].misses >= 0


class TestTraceFingerprint:
    def test_stable_and_cached(self):
        trace = _suite(n_traces=1)["t0"]
        assert trace.fingerprint() == trace.fingerprint()

    def test_sensitive_to_tags(self):
        addresses = list(range(0, 512, 8))
        plain = make_trace(addresses)
        tagged = make_trace(addresses, temporal=[True] * len(addresses))
        assert plain.fingerprint() != tagged.fingerprint()

    def test_npz_round_trip_verifies(self, tmp_path):
        from repro.memtrace.io import load_trace, save_trace

        trace = _suite(n_traces=1)["t0"]
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.fingerprint() == trace.fingerprint()


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(2) == 2

    def test_zero_and_auto_mean_all_cpus(self):
        import os

        expected = os.cpu_count() or 1
        assert resolve_jobs(0) == expected
        assert resolve_jobs("auto") == expected

    def test_garbage_rejected(self):
        with pytest.raises(ConfigError):
            resolve_jobs("many")
        with pytest.raises(ConfigError):
            resolve_jobs(-2)
