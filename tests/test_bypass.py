"""Tests for the bypassing baselines (figure 3a)."""

import pytest

from repro.sim import BypassCache, CacheGeometry, MemoryTiming

PENALTY = 12       # line fetch: 10 + 32/16
WORD_PENALTY = 11  # word fetch: 10 + 8/16 rounded up


def make_cache(buffer_lines=0):
    return BypassCache(
        CacheGeometry(128, 32, 1),
        MemoryTiming(latency=10, bus_bytes_per_cycle=16),
        buffer_lines=buffer_lines,
    )


class TestPureBypass:
    def test_non_temporal_miss_fetches_word(self):
        c = make_cache()
        assert c.access(0, False, temporal=False, spatial=False, now=0) == WORD_PENALTY
        assert c.stats.words_fetched == 1

    def test_non_temporal_never_allocates(self):
        c = make_cache()
        c.access(0, False, temporal=False, spatial=False, now=0)
        # Still a miss: spatial locality is lost — the paper's flaw.
        assert c.access(8, False, temporal=False, spatial=False, now=100) == WORD_PENALTY
        assert c.stats.misses == 2

    def test_temporal_allocates(self):
        c = make_cache()
        assert c.access(0, False, temporal=True, spatial=False, now=0) == PENALTY
        assert c.access(8, False, temporal=True, spatial=False, now=100) == 1

    def test_non_temporal_sees_cached_data(self):
        c = make_cache()
        c.access(0, False, temporal=True, spatial=False, now=0)  # temporal ref caches the line
        assert c.access(8, False, temporal=False, spatial=False, now=100) == 1

    def test_non_temporal_write_goes_to_write_buffer(self):
        c = make_cache()
        cycles = c.access(0, True, temporal=False, spatial=False, now=0)
        assert cycles == 1  # absorbed by the write buffer
        assert c.stats.writebacks == 1

    def test_stream_amat_is_terrible(self):
        # The figure 3a effect: a stride-one non-temporal stream pays a
        # round trip per word instead of per line.
        c = make_cache()
        total = sum(
            c.access(8 * k, False, temporal=False, spatial=False, now=1000 * k) for k in range(64)
        )
        bypass_amat = total / 64

        c2 = make_cache()
        total2 = sum(
            c2.access(8 * k, False, temporal=True, spatial=False, now=1000 * k) for k in range(64)
        )
        cached_amat = total2 / 64
        assert bypass_amat > 2.5 * cached_amat


class TestBufferedBypass:
    def test_miss_fills_buffer(self):
        c = make_cache(buffer_lines=2)
        assert c.access(0, False, temporal=False, spatial=False, now=0) == PENALTY
        assert c.access(8, False, temporal=False, spatial=False, now=100) == 1
        assert c.stats.hits_assist == 1

    def test_buffer_lru(self):
        c = make_cache(buffer_lines=2)
        for k, address in enumerate((0, 32, 64)):  # 3 lines through 2 slots
            c.access(address, False, temporal=False, spatial=False, now=1000 * k)
        assert c.access(0, False, temporal=False, spatial=False, now=5000) == PENALTY  # evicted
        assert c.access(64, False, temporal=False, spatial=False, now=9000) == 1

    def test_buffer_does_not_pollute_cache(self):
        c = make_cache(buffer_lines=2)
        c.access(0, False, temporal=True, spatial=False, now=0)       # cached (temporal)
        c.access(128, False, temporal=False, spatial=False, now=100)  # same set, bypassed
        assert c.access(0, False, temporal=False, spatial=False, now=1000) == 1  # still cached

    def test_dirty_buffer_eviction_writes_back(self):
        c = make_cache(buffer_lines=1)
        c.access(0, True, temporal=False, spatial=False, now=0)
        c.access(32, False, temporal=False, spatial=False, now=1000)  # evicts dirty line 0
        assert c.stats.writebacks == 1

    def test_buffer_write_hit_marks_dirty(self):
        c = make_cache(buffer_lines=1)
        c.access(0, False, temporal=False, spatial=False, now=0)
        c.access(8, True, temporal=False, spatial=False, now=100)     # write hit in buffer
        c.access(32, False, temporal=False, spatial=False, now=1000)
        assert c.stats.writebacks == 1


class TestReset:
    def test_reset_clears_everything(self):
        c = make_cache(buffer_lines=2)
        c.access(0, False, temporal=False, spatial=False, now=0)
        c.reset()
        assert c.stats.refs == 0
        assert c.access(0, False, temporal=False, spatial=False, now=0) == PENALTY
