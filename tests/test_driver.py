"""Tests for the trace-driven simulation driver."""

import pytest

from repro.sim import CacheGeometry, MemoryTiming, StandardCache, simulate, simulate_many

from conftest import make_trace


def make_cache():
    return StandardCache(
        CacheGeometry(128, 32, 1),
        MemoryTiming(latency=10, bus_bytes_per_cycle=16),
    )


class TestSimulate:
    def test_result_totals(self):
        trace = make_trace([0, 0, 32], name="seq")
        r = simulate(make_cache(), trace)
        assert r.refs == 3
        assert r.misses == 2 and r.hits_main == 1
        assert r.cycles == 12 + 1 + 12
        assert r.trace == "seq"

    def test_amat(self):
        trace = make_trace([0, 0, 0, 0])
        r = simulate(make_cache(), trace)
        assert r.amat == pytest.approx((12 + 3) / 4)

    def test_stall_advances_wall_clock(self):
        # With gap=1 everywhere, the second access would arrive mid-miss
        # unless the driver adds the stall; the cache's own wait handling
        # must then see no extra delay.
        trace = make_trace([0, 0])
        r = simulate(make_cache(), trace)
        assert r.cycles == 12 + 1  # no double-counted wait

    def test_reset_default(self):
        cache = make_cache()
        trace = make_trace([0])
        simulate(cache, trace)
        r = simulate(cache, trace)
        assert r.misses == 1  # cold again

    def test_warm_continuation(self):
        cache = make_cache()
        trace = make_trace([0])
        simulate(cache, trace)
        r = simulate(cache, trace, reset=False)
        assert r.misses == 1 and r.hits_main == 1  # cumulative counters

    def test_empty_trace(self):
        r = simulate(make_cache(), make_trace([]))
        assert r.refs == 0 and r.cycles == 0

    def test_consistency_checked(self):
        r = simulate(make_cache(), make_trace([0, 8, 64]))
        r.check()


class TestSimulateMany:
    def test_runs_all_models(self):
        trace = make_trace([0, 0])
        results = simulate_many([make_cache(), make_cache()], trace)
        assert len(results) == 2
        assert results[0].misses == results[1].misses == 1
