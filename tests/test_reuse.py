"""Tests for the reuse-distance analysis (figure 1a)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memtrace.reuse import (
    REUSE_BUCKETS,
    bucket_of,
    forward_reuse_distances,
    fraction_beyond,
    reuse_profile,
)

from conftest import make_trace


class TestForwardDistances:
    def test_simple_reuse(self):
        t = make_trace([0, 8, 0])
        d = forward_reuse_distances(t).tolist()
        assert d == [2, -1, -1]

    def test_no_reuse(self):
        t = make_trace([0, 8, 16])
        assert forward_reuse_distances(t).tolist() == [-1, -1, -1]

    def test_word_granularity(self):
        # 0 and 4 share the same 8-byte word.
        t = make_trace([0, 4])
        assert forward_reuse_distances(t).tolist() == [1, -1]

    def test_line_granularity(self):
        t = make_trace([0, 24])
        assert forward_reuse_distances(t, granularity=32).tolist() == [1, -1]

    def test_chain(self):
        t = make_trace([0, 0, 0])
        assert forward_reuse_distances(t).tolist() == [1, 1, -1]

    def test_empty(self):
        assert len(forward_reuse_distances(make_trace([]))) == 0


class TestBuckets:
    def test_bucket_labels(self):
        assert bucket_of(-1) == "no reuse"
        assert bucket_of(1) == "1 - 10^2"
        assert bucket_of(100) == "1 - 10^2"
        assert bucket_of(101) == "10^2 - 10^3"
        assert bucket_of(5000) == "10^3 - 10^4"
        assert bucket_of(1_000_000) == "> 10^4"

    def test_bucket_boundaries_match_constants(self):
        labels = [label for label, _ in REUSE_BUCKETS]
        assert labels[0] == "no reuse" and labels[-1] == "> 10^4"


class TestProfile:
    def test_fractions_sum_to_one(self):
        t = make_trace([0, 8, 0, 8, 16])
        p = reuse_profile(t)
        assert abs(sum(p.fractions.values()) - 1.0) < 1e-9

    def test_all_single_use(self):
        t = make_trace([0, 8, 16, 24])
        p = reuse_profile(t)
        assert p.fraction("no reuse") == 1.0

    def test_mean_distance(self):
        t = make_trace([0, 8, 0])
        assert reuse_profile(t).mean_distance == 2.0

    def test_named_after_trace(self):
        assert reuse_profile(make_trace([0], name="abc")).name == "abc"

    @given(st.lists(st.sampled_from([0, 8, 16, 24]), min_size=1, max_size=60))
    def test_fractions_always_sum_to_one(self, addresses):
        p = reuse_profile(make_trace(addresses))
        assert abs(sum(p.fractions.values()) - 1.0) < 1e-9


class TestFractionBeyond:
    def test_counts_only_distant_reuse(self):
        # Distances: [3, -1, 1, -1] -> beyond 2: one reference of four.
        t = make_trace([0, 8, 8, 0])
        assert fraction_beyond(t, 2) == 0.25

    def test_empty_trace(self):
        assert fraction_beyond(make_trace([]), 10) == 0.0
