"""Tests for per-instruction miss attribution."""

import pytest

from repro.core import presets
from repro.errors import TraceError
from repro.metrics import attribute
from repro.sim import CacheGeometry, MemoryTiming, StandardCache

from conftest import make_trace

TIMING = MemoryTiming(latency=10, bus_bytes_per_cycle=16)


def cache():
    return StandardCache(CacheGeometry(128, 32, 1), TIMING)


class TestAttribution:
    def test_requires_ref_ids(self):
        with pytest.raises(TraceError):
            attribute(cache(), make_trace([0, 8]))

    def test_counters_per_instruction(self):
        # Instruction 0 streams (misses); instruction 1 re-hits one word.
        trace = make_trace(
            [0, 64, 32, 64, 96, 64],
            ref_ids=[0, 1, 0, 1, 0, 1],
            gaps=[100] * 6,
        )
        result = attribute(cache(), trace)
        assert result.per_instruction[0].refs == 3
        assert result.per_instruction[0].misses == 3
        assert result.per_instruction[1].misses == 1
        assert result.per_instruction[1].refs == 3

    def test_totals_match_simulation(self, mv_tiny_trace):
        from repro.sim import simulate

        sim_result = simulate(presets.standard(), mv_tiny_trace)
        result = attribute(presets.standard(), mv_tiny_trace)
        assert result.total_refs == sim_result.refs
        assert result.total_misses == sim_result.misses

    def test_miss_ratio(self):
        trace = make_trace([0, 0, 0, 0], ref_ids=[7] * 4, gaps=[100] * 4)
        result = attribute(cache(), trace)
        assert result.per_instruction[7].miss_ratio == 0.25

    def test_top(self):
        trace = make_trace(
            [0, 64, 128, 0, 64, 128],
            ref_ids=[0, 1, 2, 0, 1, 2],
            gaps=[100] * 6,
        )
        result = attribute(cache(), trace)
        top = result.top(2)
        assert len(top) == 2
        # 0 and 128 collide (4 sets): those instructions miss twice.
        assert top[0].misses == 2

    def test_instructions_covering(self):
        trace = make_trace(
            # id 0: 4 misses; id 1: 1 miss -> one instruction covers 80%.
            [0, 512, 1024, 1536, 64],
            ref_ids=[0, 0, 0, 0, 1],
            gaps=[100] * 5,
        )
        result = attribute(cache(), trace)
        assert result.instructions_covering(0.8) == 1
        assert result.instructions_covering(1.0) == 2
        assert result.concentration(0.8) == 0.5

    def test_covering_validation(self):
        trace = make_trace([0], ref_ids=[0])
        result = attribute(cache(), trace)
        with pytest.raises(TraceError):
            result.instructions_covering(0)

    def test_empty_concentration(self):
        result = attribute(cache(), make_trace([], ref_ids=[]))
        assert result.concentration() == 0.0

    def test_works_with_soft_cache(self, mv_tiny_trace):
        result = attribute(presets.soft(), mv_tiny_trace)
        assert result.total_refs == len(mv_tiny_trace)
        # MV: the A-sweep instruction dominates misses.
        top = result.top(1)[0]
        assert top.misses > result.total_misses * 0.4
