"""CacheSpec: the declarative, picklable configuration layer."""

from __future__ import annotations

import pickle

import pytest

from repro.core.software_cache import SoftwareAssistedCache
from repro.core.spec import CacheSpec, registered_kinds
from repro.errors import ConfigError
from repro.sim.standard import StandardCache
from repro.sim.timing import MemoryTiming


class TestOf:
    def test_builds_registered_kind(self):
        model = CacheSpec.of("standard").build()
        assert isinstance(model, SoftwareAssistedCache)

    def test_params_forwarded(self):
        model = CacheSpec.of("standard_cache", ways=4).build()
        assert isinstance(model, StandardCache)
        assert model.geometry.ways == 4

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown"):
            CacheSpec.of("no-such-cache")

    def test_unknown_param_rejected(self):
        with pytest.raises(ConfigError, match="parameter"):
            CacheSpec.of("standard", not_a_knob=3)

    def test_var_keyword_builder_accepts_any_param(self):
        spec = CacheSpec.of("soft_config", bounce_back_lines=4)
        assert isinstance(spec.build(), SoftwareAssistedCache)

    def test_registry_lists_all_presets(self):
        kinds = registered_kinds()
        for kind in ("standard", "soft", "victim", "stream_buffer"):
            assert kind in kinds


class TestValueSemantics:
    def test_frozen(self):
        spec = CacheSpec.of("standard")
        with pytest.raises(AttributeError):
            spec.kind = "soft"

    def test_equality_ignores_param_order(self):
        a = CacheSpec.of("soft", ways=1, virtual_line_size=64)
        b = CacheSpec.of("soft", virtual_line_size=64, ways=1)
        assert a == b
        assert hash(a) == hash(b)

    def test_usable_as_dict_key(self):
        table = {CacheSpec.of("standard"): "base", CacheSpec.of("soft"): "soft"}
        assert table[CacheSpec.of("soft")] == "soft"

    def test_derive_overrides_without_mutating(self):
        base = CacheSpec.of("soft", ways=1)
        derived = base.derive(ways=2)
        assert derived.param_dict()["ways"] == 2
        assert base.param_dict()["ways"] == 1
        assert derived.kind == "soft"

    def test_pickle_round_trip(self):
        spec = CacheSpec.of("soft", virtual_line_size=128)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert isinstance(clone.build(), SoftwareAssistedCache)


class TestSerialisation:
    def test_dict_round_trip(self):
        spec = CacheSpec.of("standard", size_bytes=16 * 1024)
        assert CacheSpec.from_dict(spec.to_dict()) == spec

    def test_dict_round_trip_with_timing(self):
        spec = CacheSpec.of("standard", timing=MemoryTiming(latency=25))
        clone = CacheSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.param_dict()["timing"].latency == 25

    def test_fingerprint_stable_across_param_order(self):
        a = CacheSpec.of("soft", ways=1, virtual_line_size=64)
        b = CacheSpec.of("soft", virtual_line_size=64, ways=1)
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_distinguishes_params(self):
        a = CacheSpec.of("soft")
        b = CacheSpec.of("soft", virtual_line_size=128)
        assert a.fingerprint() != b.fingerprint()

    def test_fingerprint_distinguishes_kinds(self):
        assert (
            CacheSpec.of("standard").fingerprint()
            != CacheSpec.of("soft").fingerprint()
        )

    def test_fingerprint_sees_timing(self):
        a = CacheSpec.of("standard", timing=MemoryTiming(latency=20))
        b = CacheSpec.of("standard", timing=MemoryTiming(latency=30))
        assert a.fingerprint() != b.fingerprint()


class TestNamedRegistry:
    def test_cli_names_resolve(self):
        from repro.presets import SPECS, build_config, spec

        assert "standard" in SPECS and "soft" in SPECS
        assert spec("soft").kind == "soft"
        assert isinstance(build_config("soft"), SoftwareAssistedCache)

    def test_legacy_factory_import_removed(self):
        """The deprecated factory-import shim is gone: the old names
        raise AttributeError pointing at the spec registry instead of
        silently importing (and masking) the factory module."""
        import repro.presets as presets

        with pytest.raises(AttributeError, match="build models from specs"):
            presets.standard
        with pytest.raises(AttributeError, match="no attribute"):
            presets.definitely_not_a_name
