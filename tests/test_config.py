"""Tests for SoftCacheConfig validation and the preset factories."""

import pytest

from repro.core import PAPER_SOFT, PAPER_STANDARD, SoftCacheConfig, presets
from repro.core.software_cache import SoftwareAssistedCache
from repro.errors import ConfigError
from repro.sim import BypassCache, MemoryTiming, StandardCache


class TestValidation:
    def test_paper_defaults(self):
        c = SoftCacheConfig()
        assert c.size_bytes == 8192
        assert c.line_size == 32
        assert c.bounce_back_lines == 8
        assert c.virtual_line_size == 64
        assert c.virtual_lines_per_fetch == 2

    def test_virtual_line_must_be_multiple(self):
        with pytest.raises(ConfigError):
            SoftCacheConfig(virtual_line_size=48)

    def test_virtual_line_must_be_pow2(self):
        with pytest.raises(ConfigError):
            SoftCacheConfig(virtual_line_size=96)

    def test_virtual_line_below_physical_rejected(self):
        with pytest.raises(ConfigError):
            SoftCacheConfig(line_size=64, virtual_line_size=32)

    def test_virtual_line_above_cache_rejected(self):
        with pytest.raises(ConfigError):
            SoftCacheConfig(size_bytes=128, virtual_line_size=256)

    def test_virtual_line_equal_physical_means_one(self):
        c = SoftCacheConfig(virtual_line_size=32)
        assert c.virtual_lines_per_fetch == 1

    def test_disabled_virtual_lines(self):
        assert SoftCacheConfig(virtual_line_size=None).virtual_lines_per_fetch == 1

    def test_negative_bounce_back_rejected(self):
        with pytest.raises(ConfigError):
            SoftCacheConfig(bounce_back_lines=-1)

    def test_bounce_back_ways_divide(self):
        with pytest.raises(ConfigError):
            SoftCacheConfig(bounce_back_lines=8, bounce_back_ways=3)

    def test_temporal_priority_needs_temporal(self):
        with pytest.raises(ConfigError):
            SoftCacheConfig(use_temporal=False, temporal_priority=True)

    def test_geometry_errors_propagate(self):
        with pytest.raises(ConfigError):
            SoftCacheConfig(size_bytes=8000)


class TestDeriveAndLabel:
    def test_derive_changes_one_knob(self):
        base = SoftCacheConfig()
        derived = base.derive(virtual_line_size=128)
        assert derived.virtual_line_size == 128
        assert derived.bounce_back_lines == base.bounce_back_lines

    def test_label_mentions_mechanisms(self):
        label = SoftCacheConfig().label()
        assert "VL64" in label and "BB8" in label

    def test_label_victim_mode(self):
        label = SoftCacheConfig(use_temporal=False).label()
        assert "victim8" in label

    def test_paper_constants(self):
        assert PAPER_SOFT.virtual_line_size == 64
        assert PAPER_STANDARD.bounce_back_lines == 0
        assert PAPER_STANDARD.virtual_line_size is None


class TestPresets:
    def test_types(self):
        assert isinstance(presets.standard(), SoftwareAssistedCache)
        assert isinstance(presets.standard_cache(), StandardCache)
        assert isinstance(presets.bypass(), BypassCache)
        assert isinstance(presets.bypass_buffered(), BypassCache)

    def test_standard_has_no_mechanisms(self):
        c = presets.standard()
        assert c.config.bounce_back_lines == 0
        assert c.config.virtual_line_size is None

    def test_victim_disables_temporal(self):
        c = presets.victim()
        assert not c.config.use_temporal
        assert c.config.bounce_back_lines == 8

    def test_soft_full_mechanism(self):
        c = presets.soft()
        assert c.config.use_temporal
        assert c.config.virtual_line_size == 64
        assert c.config.bounce_back_lines == 8

    def test_temporal_only(self):
        c = presets.soft_temporal_only()
        assert c.config.virtual_line_size is None
        assert c.config.use_temporal

    def test_spatial_only(self):
        c = presets.soft_spatial_only()
        assert c.config.virtual_line_size == 64
        assert not c.config.use_temporal

    def test_temporal_priority(self):
        c = presets.temporal_priority()
        assert c.config.ways == 2
        assert c.config.temporal_priority
        assert c.config.bounce_back_lines == 0

    def test_prefetch_presets(self):
        assert presets.soft_prefetch().config.prefetch == "software"
        assert presets.standard_prefetch().config.prefetch == "on-miss"

    def test_timing_propagates(self):
        t = MemoryTiming(latency=5)
        assert presets.soft(timing=t).timing.latency == 5
        assert presets.standard(timing=t).timing.latency == 5

    def test_size_overrides(self):
        c = presets.soft(size_bytes=32 * 1024, line_size=64,
                         virtual_line_size=128)
        assert c.geometry.n_sets == 512
