"""Tests for the warm-up window of the simulation driver."""

import pytest

from repro.sim import CacheGeometry, MemoryTiming, StandardCache, simulate

from conftest import make_trace

TIMING = MemoryTiming(latency=10, bus_bytes_per_cycle=16)
PENALTY = 12


def make_cache():
    return StandardCache(CacheGeometry(128, 32, 1), TIMING)


class TestWarmup:
    def test_cold_misses_discarded(self):
        # First touch misses; all later touches hit.
        trace = make_trace([0] * 10, gaps=[100] * 10)
        cold = simulate(make_cache(), trace)
        warm = simulate(make_cache(), trace, warmup_refs=1)
        assert cold.misses == 1
        assert warm.misses == 0
        assert warm.refs == 9
        assert warm.amat == 1.0

    def test_state_survives_warmup(self):
        # Warm-up must warm the cache, not reset it.
        trace = make_trace([0, 32, 0, 32], gaps=[100] * 4)
        warm = simulate(make_cache(), trace, warmup_refs=2)
        assert warm.misses == 0 and warm.hits_main == 2

    def test_zero_warmup_is_default(self):
        trace = make_trace([0, 0], gaps=[100] * 2)
        a = simulate(make_cache(), trace)
        b = simulate(make_cache(), trace, warmup_refs=0)
        assert a.as_dict() == b.as_dict()

    def test_warmup_longer_than_trace(self):
        trace = make_trace([0, 0], gaps=[100] * 2)
        r = simulate(make_cache(), trace, warmup_refs=10)
        assert r.refs == 0 and r.cycles == 0

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError):
            simulate(make_cache(), make_trace([0]), warmup_refs=-1)

    def test_cycles_match_post_warmup_sum(self):
        trace = make_trace([0, 128, 0, 128], gaps=[100] * 4)
        warm = simulate(make_cache(), trace, warmup_refs=2)
        # After warm-up, both accesses are conflict misses.
        assert warm.refs == 2
        assert warm.cycles == 2 * PENALTY

    def test_works_with_soft_cache(self, mv_tiny_trace):
        from repro.core import presets

        half = len(mv_tiny_trace) // 2
        warm = simulate(presets.soft(), mv_tiny_trace, warmup_refs=half)
        cold = simulate(presets.soft(), mv_tiny_trace)
        assert warm.refs == len(mv_tiny_trace) - half
        assert warm.miss_ratio <= cold.miss_ratio  # steady state hits more
