"""Tests for instrumented trace generation."""

import numpy as np
import pytest

from repro.compiler import (
    Array,
    ArrayRef,
    Loop,
    Program,
    ScalarBlock,
    generate_trace,
    nest,
    var,
)
from repro.errors import CompilerError
from repro.memtrace import UNIT_GAPS

i, j = var("i"), var("j")


def simple_program(**kwargs):
    arrays = [Array("A", (4, 4)), Array("X", (4,))]
    loop = nest(
        [Loop("i", 0, 2), Loop("j", 0, 4)],
        body=[ArrayRef("A", (j, i)), ArrayRef("X", (j,), is_write=True)],
        name="simple",
    )
    return Program("simple", arrays, [loop], **kwargs)


class TestAddressStream:
    def test_reference_order_is_source_order(self):
        trace = generate_trace(simple_program(), gap_distribution=UNIT_GAPS)
        # First iteration (i=0, j=0): A(0,0) then X(0).
        bases = simple_program().layout()
        assert trace.addresses[0] == bases["A"]
        assert trace.addresses[1] == bases["X"]
        # Second iteration (i=0, j=1): A(1,0), X(1).
        assert trace.addresses[2] == bases["A"] + 8
        assert trace.addresses[3] == bases["X"] + 8

    def test_column_major_layout(self):
        # A(j, i): walking j is stride-1, walking i strides by 4 elements.
        trace = generate_trace(simple_program(), gap_distribution=UNIT_GAPS)
        a_addresses = trace.addresses[0::2]
        assert a_addresses[4] - a_addresses[0] == 4 * 8  # i += 1

    def test_total_length(self):
        p = simple_program()
        trace = generate_trace(p)
        assert len(trace) == p.references == 2 * 4 * 2

    def test_repeat(self):
        p = simple_program(repeat=3)
        trace = generate_trace(p)
        assert len(trace) == 3 * 16
        # The repeated sections address the same data.
        assert trace.addresses[0] == trace.addresses[16]

    def test_write_flags(self):
        trace = generate_trace(simple_program())
        assert trace.is_write.tolist()[:4] == [False, True, False, True]

    def test_ref_ids_stable_across_repeats(self):
        trace = generate_trace(simple_program(repeat=2))
        assert trace.ref_ids[0] == trace.ref_ids[16]
        assert set(trace.ref_ids.tolist()) == {0, 1}


class TestPrePostOrder:
    def test_interleaving(self):
        arrays = [Array("Y", (2,)), Array("A", (3, 2))]
        loop = nest(
            [Loop("i", 0, 2), Loop("j", 0, 3)],
            body=[ArrayRef("A", (j, i))],
            pre=[ArrayRef("Y", (i,))],
            post=[ArrayRef("Y", (i,), is_write=True)],
        )
        p = Program("pp", arrays, [loop])
        trace = generate_trace(p, gap_distribution=UNIT_GAPS)
        bases = p.layout()
        expected = [
            bases["Y"], bases["A"], bases["A"] + 8, bases["A"] + 16, bases["Y"],
            bases["Y"] + 8, bases["A"] + 24, bases["A"] + 32, bases["A"] + 40,
            bases["Y"] + 8,
        ]
        assert trace.addresses.tolist() == expected

    def test_pre_post_write_flags(self):
        arrays = [Array("Y", (2,)), Array("A", (3, 2))]
        loop = nest(
            [Loop("i", 0, 2), Loop("j", 0, 3)],
            body=[ArrayRef("A", (j, i))],
            pre=[ArrayRef("Y", (i,))],
            post=[ArrayRef("Y", (i,), is_write=True)],
        )
        trace = generate_trace(Program("pp", arrays, [loop]))
        assert trace.is_write.tolist()[:5] == [False, False, False, False, True]


class TestIndirect:
    def test_gather_addresses(self):
        table = (3, 0, 2, 1)
        arrays = [Array("X", (4,))]
        loop = nest(
            [Loop("j", 0, 4)], [ArrayRef("X", (j,), indirect=table)]
        )
        p = Program("gather", arrays, [loop])
        trace = generate_trace(p, gap_distribution=UNIT_GAPS)
        base = p.layout()["X"]
        assert trace.addresses.tolist() == [base + 8 * t for t in table]

    def test_out_of_range_position_rejected(self):
        arrays = [Array("X", (4,))]
        loop = nest([Loop("j", 0, 9)], [ArrayRef("X", (j,), indirect=(0,) * 4)])
        with pytest.raises(CompilerError):
            generate_trace(Program("bad", arrays, [loop]))

    def test_out_of_bounds_offset_rejected(self):
        arrays = [Array("X", (4,))]
        loop = nest([Loop("j", 0, 2)], [ArrayRef("X", (j,), indirect=(0, 99))])
        with pytest.raises(CompilerError):
            generate_trace(Program("bad", arrays, [loop]))


class TestBoundsChecking:
    def test_direct_overflow_rejected(self):
        arrays = [Array("X", (4,))]
        loop = nest([Loop("j", 0, 5)], [ArrayRef("X", (j,))])
        with pytest.raises(CompilerError):
            generate_trace(Program("bad", arrays, [loop]))

    def test_negative_offset_rejected(self):
        arrays = [Array("X", (4,))]
        loop = nest([Loop("j", 0, 2)], [ArrayRef("X", (j - 1,))])
        with pytest.raises(CompilerError):
            generate_trace(Program("bad", arrays, [loop]))


class TestScalarBlocks:
    def test_round_robin_and_writes(self):
        block = ScalarBlock((100, 108), count=5, write_every=2)
        p = Program("s", [], [block])
        trace = generate_trace(p, gap_distribution=UNIT_GAPS)
        assert trace.addresses.tolist() == [100, 108, 100, 108, 100]
        assert trace.is_write.tolist() == [False, True, False, True, False]

    def test_untagged(self):
        block = ScalarBlock((100,), count=3)
        trace = generate_trace(Program("s", [], [block]))
        assert not trace.temporal.any() and not trace.spatial.any()


class TestTagsAndGaps:
    def test_tags_attached_from_analysis(self, fig5_program):
        trace = generate_trace(fig5_program, gap_distribution=UNIT_GAPS)
        # Per iteration: A(0,0), B(1,0), B(1,1), X(1,1), Y(1,1), Y(1,1).
        assert trace.temporal.tolist()[:6] == [False, True, True, True, True, True]
        assert trace.spatial.tolist()[:6] == [False, False, True, True, True, True]

    def test_deterministic_given_seed(self, fig5_program):
        a = generate_trace(fig5_program, seed=5)
        b = generate_trace(fig5_program, seed=5)
        assert (a.gaps == b.gaps).all() and (a.addresses == b.addresses).all()

    def test_different_seeds_differ(self, fig5_program):
        a = generate_trace(fig5_program, seed=1)
        b = generate_trace(fig5_program, seed=2)
        assert (a.gaps != b.gaps).any()

    def test_unit_gaps(self, fig5_program):
        trace = generate_trace(fig5_program, gap_distribution=UNIT_GAPS)
        assert (trace.gaps == 1).all()

    def test_name_override(self, fig5_program):
        assert generate_trace(fig5_program, name="custom").name == "custom"


class TestGuards:
    def test_reference_limit(self):
        arrays = [Array("X", (10,))]
        loop = nest(
            [Loop("i", 0, 10_000_000), Loop("j", 0, 10)],
            [ArrayRef("X", (j,))],
        )
        with pytest.raises(CompilerError):
            generate_trace(Program("huge", arrays, [loop]))
