"""Tests for the benchmark suite models."""

import pytest

from repro.compiler import analyze_program, generate_trace
from repro.errors import ConfigError
from repro.memtrace import tag_profile
from repro.workloads import (
    BENCHMARK_ORDER,
    KERNEL_ORDER,
    FIG11A_BLOCK_SIZES,
    FIG11B_LEADING_DIMS,
    blocked_mm_program,
    blocked_mv_program,
    build_program,
    get_trace,
    liv_program,
    mv_program,
    nas_program,
    perfect_kernel,
    perfect_program,
    slalom_program,
    spmv_program,
    suite_traces,
)


class TestRegistry:
    def test_benchmark_order_is_papers(self):
        assert BENCHMARK_ORDER == (
            "MDG", "BDN", "DYF", "TRF", "NAS", "Slalom", "LIV", "MV", "SpMV",
        )

    def test_kernel_order(self):
        assert KERNEL_ORDER == ("ADM", "MDG", "BDN", "DYF", "ARC", "FLO", "TRF")

    def test_unknown_benchmark(self):
        with pytest.raises(ConfigError):
            build_program("nonesuch")

    def test_trace_caching(self):
        a = get_trace("MV", "tiny")
        b = get_trace("MV", "tiny")
        assert a is b

    def test_different_seeds_not_cached_together(self):
        a = get_trace("MV", "tiny", seed=0)
        b = get_trace("MV", "tiny", seed=1)
        assert a is not b

    def test_suite_traces_complete(self):
        traces = suite_traces("tiny")
        assert tuple(traces) == BENCHMARK_ORDER
        assert all(len(t) > 0 for t in traces.values())


class TestPrograms:
    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_all_build_and_generate(self, name):
        program = build_program(name, "tiny")
        trace = generate_trace(program, seed=0)
        assert len(trace) == program.references * program.repeat
        assert trace.ref_ids is not None

    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_scales_differ(self, name):
        tiny = build_program(name, "tiny")
        test = build_program(name, "test")
        assert test.references > tiny.references

    def test_unknown_scale_rejected(self):
        for builder in (mv_program, spmv_program, liv_program, nas_program,
                        slalom_program):
            with pytest.raises(ConfigError):
                builder("gigantic")
        with pytest.raises(ConfigError):
            perfect_program("MDG", "gigantic")


class TestMV:
    def test_tags(self):
        program = mv_program("tiny")
        tags = analyze_program(program)[0]
        a_tag, x_tag = tags.body
        assert (a_tag.temporal, a_tag.spatial) == (False, True)
        assert (x_tag.temporal, x_tag.spatial) == (True, True)
        assert tags.pre[0].temporal and tags.pre[0].spatial

    def test_x_exceeds_cache_at_paper_scale(self):
        program = mv_program("paper")
        assert program.arrays["X"].size_bytes > 8 * 1024


class TestSpMV:
    def test_user_directive_on_x(self):
        program = spmv_program("tiny")
        tags = analyze_program(program)[0]
        x_tag = tags.body[2]
        assert x_tag.temporal and not x_tag.spatial

    def test_index_and_matrix_untagged_temporal(self):
        program = spmv_program("tiny")
        tags = analyze_program(program)[0]
        for position in (0, 1):  # Index, A
            assert not tags.body[position].temporal
            assert tags.body[position].spatial

    def test_deterministic_structure(self):
        a = spmv_program("tiny", seed=1)
        b = spmv_program("tiny", seed=1)
        assert (
            a.items[0].body[2].indirect == b.items[0].body[2].indirect
        )


class TestPerfect:
    @pytest.mark.parametrize("code", KERNEL_ORDER)
    def test_kernels_fully_tagged(self, code):
        kernel = perfect_kernel(code, "tiny")
        trace = generate_trace(kernel, seed=0)
        profile = tag_profile(trace)
        # Manual instrumentation: no CALL bodies, no scalar noise.
        assert profile.untagged_fraction < 0.7
        full = generate_trace(perfect_program(code, "tiny"), seed=0)
        full_profile = tag_profile(full)
        assert profile.untagged_fraction <= full_profile.untagged_fraction

    def test_full_codes_have_untagged_share(self):
        trace = generate_trace(perfect_program("MDG", "tiny"), seed=0)
        assert tag_profile(trace).untagged_fraction > 0.3

    def test_dyf_temporal_heavy(self):
        trace = generate_trace(perfect_program("DYF", "tiny"), seed=0)
        profile = tag_profile(trace)
        assert profile.temporal_fraction > 0.3

    def test_trf_spatial_heavy(self):
        trace = generate_trace(perfect_program("TRF", "tiny"), seed=0)
        profile = tag_profile(trace)
        assert profile.spatial_fraction > profile.temporal_fraction

    def test_unknown_code(self):
        with pytest.raises(ConfigError):
            perfect_program("XYZ")
        with pytest.raises(ConfigError):
            perfect_kernel("XYZ")


class TestBlocked:
    def test_block_must_tile(self):
        with pytest.raises(ConfigError):
            blocked_mv_program(7, "tiny")  # 120 % 7 != 0

    def test_block_sizes_tile_paper_vector(self):
        for block in FIG11A_BLOCK_SIZES:
            blocked_mv_program(block, "paper")  # must not raise

    def test_blocked_mv_reference_count(self):
        program = blocked_mv_program(10, "tiny")
        trace = generate_trace(program)
        assert len(trace) == program.references

    def test_mm_leading_dim_bounds(self):
        with pytest.raises(ConfigError):
            blocked_mm_program(10, copying=False, scale="tiny")

    def test_mm_copy_adds_copy_phase(self):
        no_copy = blocked_mm_program(116, copying=False, scale="tiny")
        copy = blocked_mm_program(116, copying=True, scale="tiny")
        assert len(copy.items) == len(no_copy.items) + 1

    def test_mm_compute_reads_local_array_when_copying(self):
        copy = blocked_mm_program(116, copying=True, scale="tiny")
        compute = copy.items[-1]
        assert compute.body[0].array == "LA"

    def test_fig11b_dims(self):
        assert FIG11B_LEADING_DIMS == tuple(range(116, 127))
