"""Tests for the standard (baseline) cache, on hand-computed sequences.

Geometry used throughout: 128 B cache, 32 B lines => 4 sets.
Timing: latency 10, 16 B/cycle bus => miss penalty 10 + 2 = 12 cycles.
"""

import pytest

from repro.sim import CacheGeometry, MemoryTiming, StandardCache


PENALTY = 12


def make_cache(ways=1):
    return StandardCache(
        CacheGeometry(128 * ways, 32, ways),
        MemoryTiming(latency=10, bus_bytes_per_cycle=16),
    )


def access(cache, address, write=False, now=0):
    return cache.access(address, write, temporal=False, spatial=False, now=now)


class TestHitsAndMisses:
    def test_cold_miss_then_hit(self):
        c = make_cache()
        assert access(c, 0, now=0) == PENALTY
        assert access(c, 0, now=100) == 1
        assert c.stats.misses == 1 and c.stats.hits_main == 1

    def test_line_granularity(self):
        c = make_cache()
        access(c, 0, now=0)
        assert access(c, 31, now=100) == 1  # same 32-byte line
        assert access(c, 32, now=200) == PENALTY  # next line

    def test_conflict_eviction(self):
        c = make_cache()  # 4 sets: addresses 0 and 128 collide
        access(c, 0, now=0)
        access(c, 128, now=100)
        assert access(c, 0, now=200) == PENALTY
        assert c.stats.misses == 3

    def test_distinct_sets_coexist(self):
        c = make_cache()
        for k, address in enumerate((0, 32, 64, 96)):
            access(c, address, now=100 * k)
        for k, address in enumerate((0, 32, 64, 96)):
            assert access(c, address, now=1000 + 10 * k) == 1

    def test_words_fetched(self):
        c = make_cache()
        access(c, 0)
        assert c.stats.words_fetched == 4  # 32-byte line = 4 words
        assert c.stats.lines_fetched == 1


class TestLRU:
    def test_two_way_lru(self):
        c = make_cache(ways=2)
        # Set 0 holds lines 0 and 256 (two ways).
        access(c, 0, now=0)
        access(c, 256, now=10)
        access(c, 0, now=20)       # touch 0: 256 becomes LRU
        access(c, 512, now=30)     # evicts 256
        assert access(c, 0, now=100) == 1
        assert access(c, 256, now=200) == PENALTY

    def test_two_way_capacity(self):
        c = make_cache(ways=2)
        access(c, 0, now=0)
        access(c, 256, now=100)
        assert access(c, 0, now=200) == 1
        assert access(c, 256, now=300) == 1


class TestWrites:
    def test_write_allocate(self):
        c = make_cache()
        assert access(c, 0, write=True, now=0) == PENALTY
        assert access(c, 0, now=100) == 1

    def test_dirty_eviction_writeback(self):
        c = make_cache()
        access(c, 0, write=True, now=0)
        access(c, 128, now=100)  # evicts dirty line 0
        assert c.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = make_cache()
        access(c, 0, now=0)
        access(c, 128, now=100)
        assert c.stats.writebacks == 0

    def test_write_hit_marks_dirty(self):
        c = make_cache()
        access(c, 0, now=0)            # clean fill
        access(c, 0, write=True, now=10)
        access(c, 128, now=100)
        assert c.stats.writebacks == 1


class TestBusyWait:
    def test_access_waits_for_previous_miss(self):
        c = make_cache()
        access(c, 0, now=0)  # cache busy until t=12
        # A hit issued at t=5 waits 7 cycles, then takes 1.
        assert access(c, 0, now=5) == 8

    def test_no_wait_after_completion(self):
        c = make_cache()
        access(c, 0, now=0)
        assert access(c, 0, now=12) == 1


class TestObservability:
    def test_contains(self):
        c = make_cache()
        access(c, 0)
        assert c.contains(0) and c.contains(24)
        assert not c.contains(32)

    def test_reset(self):
        c = make_cache()
        access(c, 0)
        c.reset()
        assert not c.contains(0)
        assert c.stats.refs == 0

    def test_tags_ignored(self):
        c = make_cache()
        c.access(0, False, temporal=True, spatial=True, now=0)
        c.access(128, False, temporal=True, spatial=True, now=10)
        assert c.access(0, False, temporal=True, spatial=True, now=100) == PENALTY
