"""Pipelined streaming engine: parity, policy and failure handling.

The pipeline's contract is the strongest in the repo: for every config
it accepts, ``simulate_stream(..., workers=N)`` must be *bit-identical*
to the serial streamed fast engine — counters, final model state, and
every per-reference telemetry column — at any worker count and any
chunk size.  These tests check that contract on randomized traces with
deliberately awkward chunk sizes (1, primes, chunk == trace), both
trace- and store-backed, plus the surrounding machinery: worker
resolution, refusal codes, the explicit-vs-ambient worker policy, and
crash propagation (a worker raising, and a worker dying outright).
"""

import copy
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import simulate as api_simulate
from repro.errors import ConfigError
from repro.harness.bench import pipeline_bench_guard, soft_bench_guard
from repro.memtrace import TraceStore
from repro.presets import spec as preset_spec
from repro.sim import CacheGeometry, MemoryTiming, StandardCache, simulate
from repro.sim.driver import simulate_stream
from repro.sim.engine import PARITY_FIELDS
from repro.stream import (
    MAX_PIPELINE_WORKERS,
    PipelineError,
    TraceStream,
    resolve_workers,
    simulate_pipeline,
)
from repro.stream import pipeline as pipeline_mod
from repro.stream.pipeline import pipeline_refusal

from conftest import make_trace

TIMING = MemoryTiming(latency=10, bus_bytes_per_cycle=16)


def random_trace(seed, refs=3000, lines=256, write_ratio=0.3):
    rng = np.random.default_rng(seed)
    return make_trace(
        (rng.integers(0, lines * 4, refs) * 8).tolist(),
        is_write=(rng.random(refs) < write_ratio).tolist(),
        temporal=(rng.random(refs) < 0.25).tolist(),
        spatial=(rng.random(refs) < 0.25).tolist(),
        gaps=rng.integers(0, 5, refs).tolist(),
        name=f"rand{seed}",
    )


def build_standard(ways=1):
    return StandardCache(CacheGeometry(1024, 32, ways=ways), TIMING)


def assert_parity(reference, pipelined):
    bad = {
        name: (getattr(reference, name), getattr(pipelined, name))
        for name in PARITY_FIELDS
        if getattr(reference, name) != getattr(pipelined, name)
    }
    assert not bad, f"pipelined counters diverge: {bad}"


def model_state(model):
    state = {}
    for attr in ("_tags", "_dirty", "_temporal", "_ready_at",
                 "_bus_free_at", "last_fetch"):
        if hasattr(model, attr):
            state[attr] = copy.deepcopy(getattr(model, attr))
    state["wb"] = (model.write_buffer.pushes, model.write_buffer.stall_cycles)
    return state


class Recorder:
    """A probe that keeps every telemetry batch for column comparison."""

    def __init__(self):
        self.batches = []
        self.finished = None

    def on_batch(self, batch):
        self.batches.append(batch)

    def finish(self, result):
        self.finished = result


COLUMNS = ("addresses", "is_write", "temporal", "spatial", "gaps",
           "miss", "assist_hit", "cycles", "words", "wb_stall")


def assert_telemetry_equal(serial, pipelined):
    assert len(serial.batches) == len(pipelined.batches)
    for a, b in zip(serial.batches, pipelined.batches):
        assert a.start == b.start
        for name in COLUMNS:
            assert np.array_equal(getattr(a, name), getattr(b, name)), (
                f"telemetry column {name} diverges in batch at {a.start}"
            )


# ----------------------------------------------------------------------
# Bit-identical parity
# ----------------------------------------------------------------------

class TestPipelineParity:
    @pytest.mark.parametrize("ways", [1, 2, 4])
    @pytest.mark.parametrize("workers", [2, 3])
    @pytest.mark.parametrize("chunk_refs", [1, 37, 509, 3000])
    def test_counters_and_state(self, workers, chunk_refs, ways):
        trace = random_trace(40, refs=3000)
        m_serial = build_standard(ways=ways)
        serial = simulate_stream(
            m_serial,
            TraceStream.from_trace(trace, chunk_refs=chunk_refs),
            engine="fast",
        )
        assert serial.engine == "fast"
        m_pipe = build_standard(ways=ways)
        pipelined = simulate_stream(
            m_pipe, TraceStream.from_trace(trace, chunk_refs=chunk_refs),
            workers=workers,
        )
        assert pipelined.engine == "fast"
        assert_parity(serial, pipelined)
        assert model_state(m_serial) == model_state(m_pipe)

    def test_store_backed(self, tmp_path):
        trace = random_trace(41, refs=4000, write_ratio=0.5)
        store = TraceStore.save(trace, tmp_path / "t.store", chunk_refs=777)
        serial = simulate_stream(
            build_standard(), TraceStream.from_store(store)
        )
        pipelined = simulate_stream(
            build_standard(), TraceStream.from_store(store), workers=2
        )
        assert_parity(serial, pipelined)

    def test_unbuffered_write_buffer(self):
        timing = MemoryTiming(
            latency=10, bus_bytes_per_cycle=16, write_buffer_entries=0
        )
        trace = random_trace(42, write_ratio=0.6)
        build = lambda: StandardCache(CacheGeometry(512, 32), timing)
        serial = simulate_stream(
            build(), TraceStream.from_trace(trace, chunk_refs=101)
        )
        pipelined = simulate_stream(
            build(), TraceStream.from_trace(trace, chunk_refs=101), workers=2
        )
        assert_parity(serial, pipelined)

    def test_telemetry_columns(self):
        trace = random_trace(43, refs=2500)
        serial_rec, pipe_rec = Recorder(), Recorder()
        serial = simulate_stream(
            build_standard(),
            TraceStream.from_trace(trace, chunk_refs=211),
            probes=serial_rec,
        )
        pipelined = simulate_stream(
            build_standard(),
            TraceStream.from_trace(trace, chunk_refs=211),
            probes=pipe_rec, workers=2,
        )
        assert_parity(serial, pipelined)
        assert_telemetry_equal(serial_rec, pipe_rec)
        assert pipe_rec.finished is pipelined

    def test_more_workers_than_chunks(self):
        trace = random_trace(44, refs=600)
        serial = simulate_stream(
            build_standard(), TraceStream.from_trace(trace, chunk_refs=500)
        )
        pipelined = simulate_stream(
            build_standard(), TraceStream.from_trace(trace, chunk_refs=500),
            workers=8,
        )
        assert_parity(serial, pipelined)

    def test_single_reference_trace(self):
        trace = make_trace([64], is_write=[True])
        serial = simulate_stream(
            build_standard(), TraceStream.from_trace(trace, chunk_refs=1)
        )
        pipelined = simulate_stream(
            build_standard(), TraceStream.from_trace(trace, chunk_refs=1),
            workers=2,
        )
        assert_parity(serial, pipelined)

    def test_api_simulate_pipeline_kwarg_wraps_trace(self):
        trace = random_trace(45, refs=1200)
        plain = api_simulate(build_standard(), trace)
        piped = api_simulate(build_standard(), trace, pipeline=2)
        assert piped.engine == "fast"
        assert_parity(plain, piped)

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        refs=st.integers(1, 1200),
        chunk_refs=st.integers(1, 400),
        workers=st.integers(2, 3),
    )
    def test_property_parity(self, seed, refs, chunk_refs, workers):
        trace = random_trace(seed, refs=refs)
        m_serial = build_standard()
        serial = simulate_stream(
            m_serial, TraceStream.from_trace(trace, chunk_refs=chunk_refs)
        )
        m_pipe = build_standard()
        pipelined = simulate_stream(
            m_pipe, TraceStream.from_trace(trace, chunk_refs=chunk_refs),
            workers=workers,
        )
        assert_parity(serial, pipelined)
        assert model_state(m_serial) == model_state(m_pipe)


# ----------------------------------------------------------------------
# Worker resolution and refusal policy
# ----------------------------------------------------------------------

class TestResolveWorkers:
    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_PIPELINE_WORKERS", raising=False)
        assert resolve_workers() == 1

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PIPELINE_WORKERS", "7")
        assert resolve_workers(3) == 3
        assert resolve_workers() == 7

    def test_auto_means_cpu_count(self):
        expected = min(os.cpu_count() or 1, MAX_PIPELINE_WORKERS)
        assert resolve_workers("auto") == expected
        assert resolve_workers(0) == expected

    def test_clamped_to_max(self):
        assert resolve_workers(10_000) == MAX_PIPELINE_WORKERS

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            resolve_workers(-1)

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_PIPELINE_WORKERS", "many")
        with pytest.raises(ConfigError):
            resolve_workers()


class TestPipelineRefusal:
    def test_standard_accepted(self):
        assert pipeline_refusal(preset_spec("standard").build()) is None

    def test_assisted_refused(self):
        reason = pipeline_refusal(preset_spec("soft").build())
        assert reason.code == "pipeline-assisted"

    def test_set_associative_accepted(self):
        # ways != 1 used to refuse as "pipeline-assoc"; the LRU scan is
        # now split like the direct-mapped one, and the code is retired.
        model = StandardCache(CacheGeometry(2048, 32, ways=2), TIMING)
        assert pipeline_refusal(model) is None
        from repro.sim.engine import EngineRefusal

        assert "pipeline-assoc" not in EngineRefusal.CODES

    def test_assisted_refusal_covers_assoc_assisted(self):
        # temporal-priority is assisted *and* 2-way: with the assoc
        # refusal retired, the assisted refusal is what remains.
        reason = pipeline_refusal(preset_spec("temporal-priority").build())
        assert reason.code == "pipeline-assisted"

    def test_fast_refusal_passes_through(self):
        reason = pipeline_refusal(
            preset_spec("standard").build(), reset=False
        )
        assert reason.code == "warm-start"

    def test_explicit_workers_on_refusing_config_raises(self):
        trace = random_trace(50, refs=500)
        model = preset_spec("soft").build()
        with pytest.raises(ConfigError, match="pipeline"):
            simulate_stream(
                model, TraceStream.from_trace(trace, chunk_refs=100),
                workers=2,
            )

    def test_explicit_workers_with_reference_engine_raises(self):
        trace = random_trace(51, refs=500)
        with pytest.raises(ConfigError, match="reference"):
            simulate_stream(
                build_standard(),
                TraceStream.from_trace(trace, chunk_refs=100),
                engine="reference", workers=2,
            )

    def test_ambient_workers_fall_back_to_serial(self, monkeypatch):
        # $REPRO_PIPELINE_WORKERS is a performance hint, not a demand:
        # a refusing config silently keeps its serial engine.
        monkeypatch.setenv("REPRO_PIPELINE_WORKERS", "2")
        trace = random_trace(52, refs=500)
        plain = simulate(preset_spec("soft").build(), trace)
        streamed = simulate_stream(
            preset_spec("soft").build(),
            TraceStream.from_trace(trace, chunk_refs=100),
        )
        assert_parity(plain, streamed)

    def test_ambient_workers_pipeline_eligible_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_PIPELINE_WORKERS", "2")
        trace = random_trace(53, refs=900)
        serial = simulate(build_standard(), trace)
        streamed = simulate_stream(
            build_standard(), TraceStream.from_trace(trace, chunk_refs=256)
        )
        assert_parity(serial, streamed)

    def test_workers_one_stays_serial(self):
        trace = random_trace(54, refs=500)
        serial = simulate_stream(
            build_standard(), TraceStream.from_trace(trace, chunk_refs=100)
        )
        one = simulate_stream(
            build_standard(), TraceStream.from_trace(trace, chunk_refs=100),
            workers=1,
        )
        assert_parity(serial, one)


# ----------------------------------------------------------------------
# Failure propagation
# ----------------------------------------------------------------------

def _boom(stream, index, line_shift, n_sets, ways, probed):
    raise RuntimeError(f"synthetic failure on chunk {index}")


def _die(stream, index, line_shift, n_sets, ways, probed):
    os._exit(3)


class TestFailurePropagation:
    # The pool uses the fork start method, so monkeypatching the
    # worker's chunk function in the parent propagates into workers.

    def test_worker_exception_raises_pipeline_error(self, monkeypatch):
        monkeypatch.setattr(pipeline_mod, "_chunk_payload", _boom)
        trace = random_trace(60, refs=800)
        with pytest.raises(PipelineError, match="synthetic failure"):
            simulate_pipeline(
                build_standard(),
                TraceStream.from_trace(trace, chunk_refs=100),
                workers=2,
            )

    def test_worker_death_raises_pipeline_error(self, monkeypatch):
        monkeypatch.setattr(pipeline_mod, "_chunk_payload", _die)
        trace = random_trace(61, refs=800)
        with pytest.raises(PipelineError, match="died"):
            simulate_pipeline(
                build_standard(),
                TraceStream.from_trace(trace, chunk_refs=100),
                workers=2,
            )

    def test_failure_leaves_no_shared_memory_behind(self, monkeypatch):
        monkeypatch.setattr(pipeline_mod, "_chunk_payload", _boom)
        trace = random_trace(62, refs=400)
        created = []
        real_pool = pipeline_mod._slab_pool

        def tracking_pool(n_slabs, slab_bytes):
            slabs = real_pool(n_slabs, slab_bytes)
            if slabs:
                created.extend(slabs)
            return slabs

        monkeypatch.setattr(pipeline_mod, "_slab_pool", tracking_pool)
        with pytest.raises(PipelineError):
            simulate_pipeline(
                build_standard(),
                TraceStream.from_trace(trace, chunk_refs=100),
                workers=2,
            )
        for name in created:
            assert not os.path.exists(f"/dev/shm/{name}"), (
                f"slab {name} leaked after pipeline failure"
            )


# ----------------------------------------------------------------------
# Bench guards
# ----------------------------------------------------------------------

class TestPipelineBenchGuard:
    @staticmethod
    def payload(cpus, speedup, workers=2):
        return {
            "cpus": cpus,
            "results": [
                {"workers": workers, "speedup": speedup,
                 "refs_per_sec": 1_000_000, "seconds": 1.0},
            ],
        }

    def test_passes_above_floor(self):
        assert pipeline_bench_guard(self.payload(4, 1.8), 1.5) == []

    def test_fails_below_floor(self):
        problems = pipeline_bench_guard(self.payload(4, 1.1), 1.5)
        assert problems and "below" in problems[0]

    def test_degrades_without_cpus(self):
        # One core cannot beat serial: the guard only demands the run
        # completed (parity is covered by tests, not throughput).
        assert pipeline_bench_guard(self.payload(1, 0.7), 1.5) == []

    def test_missing_row_is_a_problem(self):
        problems = pipeline_bench_guard(
            self.payload(4, 2.0, workers=4), 1.5, at_workers=2
        )
        assert problems and "no measurement" in problems[0]

    def test_zero_throughput_is_a_problem(self):
        payload = self.payload(1, 0.0)
        payload["results"][0]["refs_per_sec"] = 0
        problems = pipeline_bench_guard(payload, 1.5)
        assert problems and "no throughput" in problems[0]


class TestSoftBenchGuardAssocFloor:
    @staticmethod
    def payload(dm_speedup, assoc_speedup):
        return {
            "refusal_matrix": {"soft": None, "temporal-priority": None},
            "fast_speedup": {
                "soft": dm_speedup, "temporal-priority": assoc_speedup,
            },
            "miss_ratio": {"soft": 0.01, "temporal-priority": 0.01},
        }

    def test_assoc_floor_applies_to_assoc_configs_only(self):
        problems = soft_bench_guard(
            self.payload(8.0, 3.5), min_speedup=5.0, assoc_min_speedup=3.0
        )
        assert problems == []

    def test_assoc_below_its_floor(self):
        problems = soft_bench_guard(
            self.payload(8.0, 2.0), min_speedup=5.0, assoc_min_speedup=3.0
        )
        assert len(problems) == 1 and "temporal-priority" in problems[0]

    def test_without_assoc_floor_main_floor_applies(self):
        problems = soft_bench_guard(self.payload(8.0, 3.5), min_speedup=5.0)
        assert len(problems) == 1 and "temporal-priority" in problems[0]
