"""Tests for the chunked on-disk trace store (format v2)."""

import json

import numpy as np
import pytest

from repro.errors import TraceError
from repro.memtrace import Trace, TraceStore, is_store
from repro.memtrace.store import DEFAULT_CHUNK_REFS, TraceStoreWriter

from conftest import make_trace


def tagged_trace(n=1000, seed=0, name="stored"):
    rng = np.random.default_rng(seed)
    return Trace(
        (rng.integers(0, 512, n) * 8).astype(np.int64),
        rng.random(n) < 0.4,
        rng.random(n) < 0.2,
        rng.random(n) < 0.2,
        rng.integers(0, 4, n).astype(np.int64),
        name=name,
        ref_ids=rng.integers(0, 16, n).astype(np.int64),
    )


class TestRoundTrip:
    @pytest.mark.parametrize("chunk_refs", [1, 7, 333, 1000, 5000])
    def test_columns_identical(self, tmp_path, chunk_refs):
        trace = tagged_trace()
        store = TraceStore.save(trace, tmp_path / "t.store", chunk_refs=chunk_refs)
        loaded = store.load()
        assert loaded.name == trace.name
        for column in ("addresses", "is_write", "temporal", "spatial",
                       "gaps", "ref_ids"):
            assert (getattr(loaded, column) == getattr(trace, column)).all()

    def test_fingerprint_matches_in_memory_trace(self, tmp_path):
        trace = tagged_trace()
        store = TraceStore.save(trace, tmp_path / "t.store", chunk_refs=64)
        assert store.fingerprint() == trace.fingerprint()
        assert store.load().fingerprint() == trace.fingerprint()

    def test_streamed_fingerprint_matches(self, tmp_path):
        # Writer path with no in-memory trace: the closing per-column
        # streaming pass must produce Trace.fingerprint() exactly.
        trace = tagged_trace(name="streamed")
        with TraceStore.create(
            tmp_path / "t.store", name="streamed", chunk_refs=128,
            has_ref_ids=True,
        ) as writer:
            for lo in range(0, len(trace), 100):  # misaligned blocks
                hi = min(lo + 100, len(trace))
                writer.append_block(
                    trace.addresses[lo:hi], trace.is_write[lo:hi],
                    trace.temporal[lo:hi], trace.spatial[lo:hi],
                    trace.gaps[lo:hi], ref_ids=trace.ref_ids[lo:hi],
                )
        assert writer.store.fingerprint() == trace.fingerprint()

    def test_without_ref_ids(self, tmp_path):
        trace = make_trace([0, 8, 16, 24], name="bare")
        store = TraceStore.save(trace, tmp_path / "t.store", chunk_refs=3)
        assert not store.has_ref_ids
        assert store.load().ref_ids is None

    def test_empty_trace(self, tmp_path):
        trace = make_trace([], name="empty")
        store = TraceStore.save(trace, tmp_path / "t.store")
        assert len(store) == 0 and store.n_chunks == 0
        assert len(store.load()) == 0

    @pytest.mark.parametrize("compression", ["zlib", "none"])
    def test_compressions(self, tmp_path, compression):
        trace = tagged_trace()
        store = TraceStore.save(
            trace, tmp_path / "t.store", chunk_refs=300,
            compression=compression,
        )
        assert store.compression == compression
        assert store.load().fingerprint() == trace.fingerprint()


class TestChunking:
    def test_chunk_count_and_sizes(self, tmp_path):
        store = TraceStore.save(
            tagged_trace(n=1000), tmp_path / "t.store", chunk_refs=300
        )
        assert store.n_chunks == 4
        sizes = [len(chunk) for chunk in store.chunks()]
        assert sizes == [300, 300, 300, 100]

    def test_chunks_concatenate_to_trace(self, tmp_path):
        trace = tagged_trace(n=500)
        store = TraceStore.save(trace, tmp_path / "t.store", chunk_refs=64)
        gathered = np.concatenate([c.addresses for c in store.chunks()])
        assert (gathered == trace.addresses).all()

    def test_is_store(self, tmp_path):
        assert not is_store(tmp_path / "missing")
        store_root = tmp_path / "t.store"
        TraceStore.save(make_trace([0, 8]), store_root)
        assert is_store(store_root)


class TestValidation:
    def test_open_missing(self, tmp_path):
        with pytest.raises(TraceError):
            TraceStore.open(tmp_path / "nope")

    def test_manifest_not_json(self, tmp_path):
        root = tmp_path / "bad"
        root.mkdir()
        (root / "manifest.json").write_text("{nope")
        with pytest.raises(TraceError, match="JSON"):
            TraceStore.open(root)

    def test_manifest_wrong_format(self, tmp_path):
        root = tmp_path / "bad"
        root.mkdir()
        (root / "manifest.json").write_text(json.dumps({"format": "other"}))
        with pytest.raises(TraceError):
            TraceStore.open(root)

    def test_manifest_wrong_version(self, tmp_path):
        root = tmp_path / "bad"
        root.mkdir()
        (root / "manifest.json").write_text(
            json.dumps({"format": "trace-store", "version": 99})
        )
        with pytest.raises(TraceError, match="version"):
            TraceStore.open(root)

    def test_corrupt_chunk_detected(self, tmp_path):
        root = tmp_path / "t.store"
        store = TraceStore.save(tagged_trace(), root, chunk_refs=300)
        chunk_file = root / store.manifest["chunks"][1]["file"]
        chunk_file.write_bytes(b"garbage")
        with pytest.raises(TraceError):
            list(store.chunks())
        # chunk 0 is still fine
        store.chunk(0)

    def test_tampered_chunk_fingerprint(self, tmp_path):
        # Rewrite a chunk with valid npz content but different data:
        # the per-chunk fingerprint check must catch it.
        root = tmp_path / "t.store"
        store = TraceStore.save(tagged_trace(), root, chunk_refs=300)
        good = store.chunk(1)
        np.savez(
            root / store.manifest["chunks"][1]["file"],
            addresses=good.addresses + 8,
            is_write=good.is_write,
            temporal=good.temporal,
            spatial=good.spatial,
            gaps=good.gaps,
            ref_ids=good.ref_ids,
        )
        with pytest.raises(TraceError, match="fingerprint"):
            store.chunk(1)
        # verify=False skips the check (for tooling that re-hashes)
        store.chunk(1, verify=False)

    def test_truncated_chunk_refs(self, tmp_path):
        root = tmp_path / "t.store"
        store = TraceStore.save(tagged_trace(), root, chunk_refs=300)
        good = store.chunk(0)
        np.savez(
            root / store.manifest["chunks"][0]["file"],
            addresses=good.addresses[:10],
            is_write=good.is_write[:10],
            temporal=good.temporal[:10],
            spatial=good.spatial[:10],
            gaps=good.gaps[:10],
            ref_ids=good.ref_ids[:10],
        )
        with pytest.raises(TraceError, match="refs"):
            store.chunk(0)

    def test_writer_rejects_bad_args(self, tmp_path):
        with pytest.raises(TraceError):
            TraceStore.create(tmp_path / "t", chunk_refs=0)
        with pytest.raises(TraceError):
            TraceStore.create(tmp_path / "t", compression="lzma")

    def test_writer_rejects_ragged_block(self, tmp_path):
        writer = TraceStore.create(tmp_path / "t.store")
        with pytest.raises(TraceError, match="length"):
            writer.append_block(
                np.array([0, 8]), np.array([False]),
                np.array([False, False]), np.array([False, False]),
                np.array([1, 1]),
            )

    def test_writer_requires_ref_ids_when_declared(self, tmp_path):
        writer = TraceStore.create(tmp_path / "t.store", has_ref_ids=True)
        with pytest.raises(TraceError, match="ref_ids"):
            writer.append_block(
                np.array([0]), np.array([False]), np.array([False]),
                np.array([False]), np.array([1]),
            )

    def test_aborted_writer_leaves_no_manifest(self, tmp_path):
        root = tmp_path / "t.store"
        try:
            with TraceStore.create(root, chunk_refs=2) as writer:
                writer.append_block(
                    np.array([0, 8, 16]), np.zeros(3, bool),
                    np.zeros(3, bool), np.zeros(3, bool),
                    np.ones(3, np.int64),
                )
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert not is_store(root)

    def test_describe(self, tmp_path):
        store = TraceStore.save(
            tagged_trace(n=100, name="desc"), tmp_path / "t.store",
            chunk_refs=30,
        )
        info = store.describe()
        assert info["name"] == "desc"
        assert info["refs"] == 100
        assert info["chunks"] == 4
        assert info["format"].startswith("trace-store v2")


class TestDefaults:
    def test_default_chunk_refs_sane(self):
        assert DEFAULT_CHUNK_REFS >= 1 << 14
        assert isinstance(TraceStoreWriter, type)
