"""Shared fixtures: small deterministic traces and cache configurations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler import Array, ArrayRef, Loop, Program, nest, var
from repro.core import SoftCacheConfig
from repro.memtrace import Trace, UNIT_GAPS
from repro.sim import CacheGeometry, MemoryTiming


def make_trace(
    addresses,
    is_write=None,
    temporal=None,
    spatial=None,
    gaps=None,
    name="t",
    ref_ids=None,
):
    """Build a trace from plain lists, with untagged defaults."""
    n = len(addresses)

    def col(values, default, dtype):
        if values is None:
            return np.full(n, default, dtype=dtype)
        return np.asarray(values, dtype=dtype)

    return Trace(
        np.asarray(addresses, dtype=np.int64),
        col(is_write, False, bool),
        col(temporal, False, bool),
        col(spatial, False, bool),
        col(gaps, 1, np.int64),
        name=name,
        ref_ids=None if ref_ids is None else np.asarray(ref_ids, dtype=np.int64),
    )


@pytest.fixture
def tiny_geometry():
    """A 4-set direct-mapped cache of 32-byte lines (128 B total)."""
    return CacheGeometry(size_bytes=128, line_size=32, ways=1)


@pytest.fixture
def fast_timing():
    """Simple round numbers: latency 10, 1-line transfer 2 cycles."""
    return MemoryTiming(latency=10, bus_bytes_per_cycle=16)


@pytest.fixture
def tiny_soft_config(fast_timing):
    """A minimal software-assisted configuration for unit tests."""
    return SoftCacheConfig(
        size_bytes=128,
        line_size=32,
        ways=1,
        bounce_back_lines=2,
        virtual_line_size=64,
        timing=fast_timing,
    )


@pytest.fixture
def fig5_program():
    """The paper's figure 5 instrumented loop (ground-truth tags)."""
    n = 8
    i, j = var("i"), var("j")
    arrays = [
        Array("A", (n, n)),
        Array("B", (n, n + 1)),
        Array("X", (n,)),
        Array("Y", (n,)),
    ]
    loop = nest(
        [Loop("i", 0, n), Loop("j", 0, n)],
        body=[
            ArrayRef("A", (i, j)),
            ArrayRef("B", (j, i)),
            ArrayRef("B", (j, i + 1)),
            ArrayRef("X", (j,)),
            ArrayRef("Y", (i,)),
            ArrayRef("Y", (i,), is_write=True),
        ],
        name="fig5",
    )
    return Program("fig5", arrays, [loop])


@pytest.fixture
def mv_tiny_trace():
    """A small matrix-vector trace exercising pollution and reuse."""
    from repro.compiler import generate_trace
    from repro.workloads import mv_program

    return generate_trace(mv_program("tiny"), seed=3, gap_distribution=UNIT_GAPS)
