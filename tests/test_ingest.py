"""External-trace ingestion: din/bin readers, tag annotation, CLI."""

import struct

import numpy as np
import pytest

from repro.errors import TraceError
from repro.stream import TraceStream
from repro.stream.ingest import (
    BIN_RECORD_BYTES,
    TagAnnotator,
    ingest_trace,
    iter_bin_blocks,
    iter_din_blocks,
    sniff_format,
)


def write_din(path, records, header="# sample\n"):
    with open(path, "w") as handle:
        handle.write(header)
        for label, address in records:
            handle.write(f"{label} {address:x}\n")


def write_bin(path, records):
    with open(path, "wb") as handle:
        for address, flags in records:
            handle.write(struct.pack("<QB", address, flags))


class TestSniff:
    def test_known_extensions(self, tmp_path):
        assert sniff_format("a.din") == "din"
        assert sniff_format("a.trace") == "din"
        assert sniff_format("a.bin") == "bin"
        assert sniff_format("a.raw") == "bin"

    def test_unknown_extension(self):
        with pytest.raises(TraceError, match="format"):
            sniff_format("a.dat")


class TestDinReader:
    def test_reads_loads_and_stores(self, tmp_path):
        path = tmp_path / "t.din"
        write_din(path, [(0, 0x100), (1, 0x108), (0, 0x110)])
        blocks = list(iter_din_blocks(path))
        assert len(blocks) == 1
        assert blocks[0]["addresses"].tolist() == [0x100, 0x108, 0x110]
        assert blocks[0]["is_write"].tolist() == [False, True, False]

    def test_skips_ifetch_comments_blanks(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("# header\n\n2 400\n0 100\n\n2 404\n1 108\n")
        blocks = list(iter_din_blocks(path))
        assert blocks[0]["addresses"].tolist() == [0x100, 0x108]

    def test_skips_semicolon_comments_and_mixed_noise(self, tmp_path):
        # Both comment conventions found in din files in the wild, plus
        # indented comments and blank (whitespace-only) lines.
        path = tmp_path / "t.din"
        path.write_text(
            "; dinero-style comment\n"
            "# hash comment\n"
            "0 100\n"
            "   \n"
            "  ; indented comment\n"
            "1 108\n"
            "\n"
            "0 110\n"
        )
        blocks = list(iter_din_blocks(path))
        assert blocks[0]["addresses"].tolist() == [0x100, 0x108, 0x110]
        assert blocks[0]["is_write"].tolist() == [False, True, False]

    def test_malformed_after_comments_cites_true_lineno(self, tmp_path):
        # Line numbers must count skipped noise lines: the malformed
        # record below sits on physical line 5.
        path = tmp_path / "t.din"
        path.write_text("# one\n; two\n\n0 100\njunk\n")
        with pytest.raises(TraceError, match=":5"):
            list(iter_din_blocks(path))

    def test_blocks_split_at_block_refs(self, tmp_path):
        path = tmp_path / "t.din"
        write_din(path, [(0, 8 * i) for i in range(10)])
        blocks = list(iter_din_blocks(path, block_refs=4))
        assert [len(b["addresses"]) for b in blocks] == [4, 4, 2]

    def test_malformed_line_cites_lineno(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("0 100\njunk\n")
        with pytest.raises(TraceError, match=":2"):
            list(iter_din_blocks(path))

    def test_unknown_label(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("7 100\n")
        with pytest.raises(TraceError, match="label"):
            list(iter_din_blocks(path))

    def test_bad_hex_address(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("0 xyz\n")
        with pytest.raises(TraceError, match="address"):
            list(iter_din_blocks(path))


class TestBinReader:
    def test_roundtrip_flags(self, tmp_path):
        path = tmp_path / "t.bin"
        write_bin(path, [(0x100, 0b000), (0x108, 0b001), (0x110, 0b010),
                         (0x118, 0b111)])
        block = next(iter_bin_blocks(path))
        assert block["addresses"].tolist() == [0x100, 0x108, 0x110, 0x118]
        assert block["is_write"].tolist() == [False, True, False, True]
        assert block["temporal"].tolist() == [False, False, True, True]
        assert block["spatial"].tolist() == [False, False, False, True]

    def test_truncated_record(self, tmp_path):
        path = tmp_path / "t.bin"
        write_bin(path, [(0x100, 0)])
        with open(path, "ab") as handle:
            handle.write(b"\x01\x02\x03")  # partial record
        with pytest.raises(TraceError, match="truncated"):
            list(iter_bin_blocks(path))

    def test_record_size_is_stable(self):
        assert BIN_RECORD_BYTES == 9

    def test_address_overflow(self, tmp_path):
        path = tmp_path / "t.bin"
        write_bin(path, [(2**63, 0)])
        with pytest.raises(TraceError, match="address"):
            list(iter_bin_blocks(path))


class TestTagAnnotator:
    def test_spatial_from_stride(self):
        annot = TagAnnotator(spatial_threshold=4)
        block = {
            "addresses": np.array([0, 8, 16, 1000, 1008], dtype=np.int64),
            "temporal": np.zeros(5, bool),
            "spatial": np.zeros(5, bool),
        }
        annot.annotate(block)
        # strides: -, 8, 8, 984, 8  (threshold = 4 words = 32 bytes)
        assert block["spatial"].tolist() == [False, True, True, False, True]

    def test_temporal_from_line_reuse(self):
        annot = TagAnnotator(window_lines=8, line_size=32)
        block = {
            "addresses": np.array([0, 8, 64, 0], dtype=np.int64),
            "temporal": np.zeros(4, bool),
            "spatial": np.zeros(4, bool),
        }
        annot.annotate(block)
        # line 0 touched, retouched at index 1 and index 3
        assert block["temporal"].tolist() == [False, True, False, True]

    def test_window_is_bounded(self):
        annot = TagAnnotator(window_lines=2, line_size=32)
        lines = [0, 1, 2, 3, 0]  # line 0 evicted before its reuse
        block = {
            "addresses": np.array([32 * x for x in lines], dtype=np.int64),
            "temporal": np.zeros(5, bool),
            "spatial": np.zeros(5, bool),
        }
        annot.annotate(block)
        assert block["temporal"].tolist() == [False] * 5
        assert len(annot._window) <= 2

    def test_state_carries_across_blocks(self):
        annot = TagAnnotator(window_lines=16, line_size=32)
        first = {
            "addresses": np.array([0], dtype=np.int64),
            "temporal": np.zeros(1, bool), "spatial": np.zeros(1, bool),
        }
        second = {
            "addresses": np.array([8], dtype=np.int64),
            "temporal": np.zeros(1, bool), "spatial": np.zeros(1, bool),
        }
        annot.annotate(first)
        annot.annotate(second)
        # same line, adjacent word: temporal and spatial both carry over
        assert second["temporal"].tolist() == [True]
        assert second["spatial"].tolist() == [True]

    def test_rejects_empty_window(self):
        with pytest.raises(TraceError):
            TagAnnotator(window_lines=0)


class TestIngest:
    def test_din_end_to_end(self, tmp_path):
        source = tmp_path / "t.din"
        write_din(source, [(i % 2, 8 * i) for i in range(500)])
        store = ingest_trace(source, tmp_path / "t.store", chunk_refs=128)
        assert len(store) == 500
        assert store.n_chunks == 4
        assert store.name == "t"
        trace = store.load()
        assert trace.is_write.sum() == 250
        assert not trace.temporal.any()
        assert (trace.gaps == 1).all()

    def test_annotated_ingest_simulates(self, tmp_path):
        from repro.sim import CacheGeometry, MemoryTiming, StandardCache

        source = tmp_path / "t.din"
        write_din(source, [(0, 8 * (i % 64)) for i in range(400)])
        store = ingest_trace(
            source, tmp_path / "t.store", annotate=True, chunk_refs=64
        )
        trace = store.load()
        assert trace.temporal.any() and trace.spatial.any()
        from repro.sim import cross_validate_stream

        cross_validate_stream(
            lambda: StandardCache(
                CacheGeometry(512, 32),
                MemoryTiming(latency=10, bus_bytes_per_cycle=16),
            ),
            TraceStream.from_store(store),
        )

    def test_bin_end_to_end(self, tmp_path):
        source = tmp_path / "t.bin"
        write_bin(source, [(8 * i, i % 8) for i in range(300)])
        store = ingest_trace(source, tmp_path / "t.store", gap=3, name="packed")
        trace = store.load()
        assert trace.name == "packed"
        assert (trace.gaps == 3).all()
        assert trace.temporal.sum() == sum((i % 8) & 2 != 0 for i in range(300))

    def test_rejects_unknown_format(self, tmp_path):
        source = tmp_path / "t.din"
        write_din(source, [(0, 0)])
        with pytest.raises(TraceError):
            ingest_trace(source, tmp_path / "o", fmt="elf")

    def test_rejects_negative_gap(self, tmp_path):
        source = tmp_path / "t.din"
        write_din(source, [(0, 0)])
        with pytest.raises(TraceError):
            ingest_trace(source, tmp_path / "o", gap=-1)

    def test_deterministic_fingerprint(self, tmp_path):
        source = tmp_path / "t.din"
        write_din(source, [(i % 2, 8 * i) for i in range(200)])
        a = ingest_trace(source, tmp_path / "a.store", chunk_refs=64)
        b = ingest_trace(source, tmp_path / "b.store", chunk_refs=32)
        # same content, different chunking: same trace-level fingerprint
        assert a.fingerprint() == b.fingerprint()


class TestCli:
    def test_import_info_simulate(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        write_din(tmp_path / "s.din", [(i % 2, 8 * (i % 96)) for i in range(400)])
        assert main([
            "trace", "import", "s.din", "--out", "s.store",
            "--chunk-refs", "100", "--annotate",
        ]) == 0
        assert "imported 400 references" in capsys.readouterr().out
        assert main(["trace", "info", "s.store"]) == 0
        out = capsys.readouterr().out
        assert "trace-store v2" in out and "refs: 400" in out
        assert main([
            "simulate", "--trace", "s.store", "--config", "standard",
        ]) == 0
        assert "streamed from s.store" in capsys.readouterr().out

    def test_convert_both_ways(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main
        from repro.memtrace.io import load_trace

        monkeypatch.chdir(tmp_path)
        assert main([
            "trace", "--benchmark", "MV", "--scale", "tiny", "--out", "mv.npz",
        ]) == 0
        assert main([
            "trace", "convert", "mv.npz", "--out", "mv.store",
            "--chunk-refs", "200",
        ]) == 0
        assert main([
            "trace", "convert", "mv.store", "--out", "back.npz",
        ]) == 0
        capsys.readouterr()
        assert (
            load_trace("back.npz").fingerprint()
            == load_trace("mv.npz").fingerprint()
        )

    def test_generate_store_directly(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main
        from repro.memtrace.store import is_store

        monkeypatch.chdir(tmp_path)
        assert main([
            "trace", "--benchmark", "MV", "--scale", "tiny",
            "--out", "mv.store", "--store",
        ]) == 0
        assert is_store("mv.store")

    def test_legacy_generate_needs_out(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace", "--benchmark", "MV", "--scale", "tiny"]) == 2
