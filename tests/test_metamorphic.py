"""Metamorphic properties of the simulators.

These encode symmetries any correct cache model must respect:
translating the whole address space by a multiple of the cache size
changes nothing; scaling all gaps cannot change hit/miss outcomes of an
un-timed (stateless-buffer) cache; duplicating a trace warms the second
half; and tag bits must be ignored by models without software support.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SoftCacheConfig, SoftwareAssistedCache
from repro.sim import CacheGeometry, MemoryTiming, StandardCache, simulate

from conftest import make_trace

TIMING = MemoryTiming(latency=10, bus_bytes_per_cycle=16)
CACHE_BYTES = 128

addresses = st.integers(min_value=0, max_value=63).map(lambda k: k * 8)
streams = st.lists(
    st.tuples(addresses, st.booleans(), st.booleans(), st.booleans()),
    min_size=1,
    max_size=80,
)


def build(stream, shift=0, gap=7):
    return make_trace(
        [a + shift for a, _, _, _ in stream],
        is_write=[w for _, w, _, _ in stream],
        temporal=[t for _, _, t, _ in stream],
        spatial=[s for _, _, _, s in stream],
        gaps=[gap] * len(stream),
    )


def standard():
    return StandardCache(CacheGeometry(CACHE_BYTES, 32, 1), TIMING)


def soft():
    return SoftwareAssistedCache(
        SoftCacheConfig(
            size_bytes=CACHE_BYTES, line_size=32, bounce_back_lines=2,
            virtual_line_size=64, timing=TIMING,
        )
    )


class TestTranslationInvariance:
    @settings(max_examples=120, deadline=None)
    @given(streams, st.integers(min_value=1, max_value=64))
    def test_standard_cache_translation(self, stream, multiple):
        shift = multiple * CACHE_BYTES
        a = simulate(standard(), build(stream))
        b = simulate(standard(), build(stream, shift=shift))
        assert a.cycles == b.cycles
        assert a.misses == b.misses
        assert a.writebacks == b.writebacks

    @settings(max_examples=120, deadline=None)
    @given(streams, st.integers(min_value=1, max_value=64))
    def test_soft_cache_translation(self, stream, multiple):
        # The virtual line is 64 B = 2 lines; shifting by a multiple of
        # the cache size keeps both set mapping and block alignment.
        shift = multiple * CACHE_BYTES
        a = simulate(soft(), build(stream))
        b = simulate(soft(), build(stream, shift=shift))
        assert a.cycles == b.cycles
        assert a.misses == b.misses
        assert a.bounce_backs == b.bounce_backs


class TestTagInsensitivity:
    @settings(max_examples=100, deadline=None)
    @given(streams)
    def test_standard_ignores_tags(self, stream):
        trace = build(stream)
        cleared = trace.with_tags_cleared()
        a = simulate(standard(), trace)
        b = simulate(standard(), cleared)
        assert a.cycles == b.cycles and a.misses == b.misses


class TestWarmup:
    @settings(max_examples=100, deadline=None)
    @given(streams)
    def test_replay_never_misses_more(self, stream):
        # Second pass over the same references on a warm standard cache
        # can only hit more (LRU stack property at full associativity is
        # not general, but an identical replay cannot introduce new
        # conflict misses beyond the first pass's).
        trace = build(stream)
        cache = standard()
        first = simulate(cache, trace)
        misses_first = first.misses
        second = simulate(cache, trace, reset=False)
        assert second.misses - misses_first <= misses_first


class TestGapScaling:
    @settings(max_examples=80, deadline=None)
    @given(streams, st.integers(min_value=20, max_value=200))
    def test_large_gaps_make_timing_irrelevant(self, stream, gap):
        # Once gaps exceed every latency, hit/miss outcomes are pure
        # cache-state functions: scaling gaps further changes nothing.
        a = simulate(standard(), build(stream, gap=gap + 500))
        b = simulate(standard(), build(stream, gap=gap + 1000))
        assert a.misses == b.misses
        assert a.cycles == b.cycles
