"""Tests for the write buffer model."""

import pytest

from repro.errors import ConfigError
from repro.sim import WriteBuffer


class TestValidation:
    def test_negative_entries(self):
        with pytest.raises(ConfigError):
            WriteBuffer(-1, 2)

    def test_zero_drain(self):
        with pytest.raises(ConfigError):
            WriteBuffer(4, 0)


class TestPushAndDrain:
    def test_push_without_pressure_is_free(self):
        wb = WriteBuffer(2, drain_cycles=4)
        assert wb.push(now=0) == 0
        assert wb.occupancy == 1

    def test_sequential_drain_times(self):
        wb = WriteBuffer(4, drain_cycles=4)
        wb.push(0)
        wb.push(0)  # queues behind the first: drains at 8
        wb.advance(7)
        assert wb.occupancy == 1
        wb.advance(8)
        assert wb.occupancy == 0

    def test_full_buffer_stalls(self):
        wb = WriteBuffer(1, drain_cycles=5)
        assert wb.push(0) == 0
        stall = wb.push(0)  # must wait for the first to drain at t=5
        assert stall == 5
        assert wb.stall_cycles == 5

    def test_stall_accounts_elapsed_time(self):
        wb = WriteBuffer(1, drain_cycles=5)
        wb.push(0)
        assert wb.push(3) == 2  # only 2 cycles left of the drain

    def test_drained_entries_free_slots(self):
        wb = WriteBuffer(1, drain_cycles=5)
        wb.push(0)
        assert wb.push(10) == 0  # first entry long gone

    def test_zero_entry_buffer_synchronous(self):
        wb = WriteBuffer(0, drain_cycles=6)
        assert wb.push(0) == 6
        assert wb.is_full(0)

    def test_is_full(self):
        wb = WriteBuffer(1, drain_cycles=5)
        assert not wb.is_full(0)
        wb.push(0)
        assert wb.is_full(0)
        assert not wb.is_full(5)

    def test_pushes_counted(self):
        wb = WriteBuffer(4, 2)
        wb.push(0)
        wb.push(0)
        assert wb.pushes == 2

    def test_reset(self):
        wb = WriteBuffer(2, 2)
        wb.push(0)
        wb.reset()
        assert wb.occupancy == 0 and wb.pushes == 0 and wb.stall_cycles == 0
