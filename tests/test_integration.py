"""End-to-end integration tests: the paper's headline claims at "test"
scale (big enough for pollution effects, small enough for CI)."""

import pytest

from repro import simulate
from repro.core import presets
from repro.metrics import geometric_mean, miss_reduction
from repro.workloads import BENCHMARK_ORDER, get_trace, suite_traces

SCALE = "test"


@pytest.fixture(scope="module")
def suite():
    return suite_traces(SCALE)


@pytest.fixture(scope="module")
def results(suite):
    grid = {}
    for name, trace in suite.items():
        grid[name] = {
            "standard": simulate(presets.standard(), trace),
            "temporal": simulate(presets.soft_temporal_only(), trace),
            "spatial": simulate(presets.soft_spatial_only(), trace),
            "soft": simulate(presets.soft(), trace),
        }
    return grid


class TestSafetyClaim:
    """Paper: software-assisted data caches perform better than standard
    caches in any case, so software assistance appears to be safe."""

    def test_soft_amat_never_worse(self, results):
        for bench, row in results.items():
            assert row["soft"].amat <= row["standard"].amat * 1.001, bench

    def test_soft_misses_never_worse(self, results):
        for bench, row in results.items():
            assert row["soft"].misses <= row["standard"].misses * 1.02, bench


class TestHeadlineNumbers:
    def test_mv_miss_reduction_large(self, results):
        """The paper reports up to a 62% miss reduction for MV."""
        row = results["MV"]
        assert miss_reduction(row["standard"], row["soft"]) > 0.45

    def test_suite_geomean_improvement(self, results):
        speedups = [
            row["standard"].amat / row["soft"].amat
            for row in results.values()
        ]
        assert geometric_mean(speedups) > 1.15

    def test_combination_best_on_average(self, results):
        def geomean_of(config):
            return geometric_mean(
                row[config].amat for row in results.values()
            )

        soft = geomean_of("soft")
        assert soft <= geomean_of("temporal")
        assert soft <= geomean_of("spatial")
        assert soft <= geomean_of("standard")


class TestMechanismSignatures:
    def test_most_hits_stay_in_main_cache(self, results):
        """Figure 6b: the AMAT gain requires main-cache hits to dominate."""
        for bench, row in results.items():
            assert row["soft"].main_hit_fraction > 0.80, bench

    def test_spatial_only_raises_traffic_soft_does_not(self, results):
        """Figure 7a: virtual lines alone increase traffic; combined with
        the bounce-back cache the increase (mostly) disappears."""
        spatial_excess = []
        soft_excess = []
        for bench, row in results.items():
            base = row["standard"].traffic
            if base == 0:
                continue
            spatial_excess.append(row["spatial"].traffic / base)
            soft_excess.append(row["soft"].traffic / base)
        assert geometric_mean(soft_excess) <= geometric_mean(spatial_excess)

    def test_temporal_helps_dyf(self, results):
        """Figure 6a: the bounce-back mechanism alone profits DYF."""
        row = results["DYF"]
        assert row["temporal"].amat < row["standard"].amat * 0.95

    def test_spatial_dominates_nas(self, results):
        """Figure 6a: NAS improvements come from virtual lines."""
        row = results["NAS"]
        spatial_gain = row["standard"].amat - row["spatial"].amat
        temporal_gain = row["standard"].amat - row["temporal"].amat
        assert spatial_gain > 2 * max(temporal_gain, 0.001)


class TestVictimVsBounceBack:
    def test_victim_cache_insufficient_for_pollution(self, suite):
        """Figure 3b: the bounce-back cache beats a plain victim cache
        where pollution (not just interference) is the problem."""
        trace = suite["MV"]
        victim = simulate(presets.victim(), trace)
        soft_temporal = simulate(presets.soft_temporal_only(), trace)
        assert soft_temporal.amat < victim.amat


class TestLatencyDependence:
    def test_gain_grows_with_latency_on_mv(self):
        from repro.sim import MemoryTiming

        trace = get_trace("MV", SCALE)
        gains = []
        for latency in (5, 20, 30):
            timing = MemoryTiming(latency=latency)
            base = simulate(presets.standard(timing=timing), trace)
            soft = simulate(presets.soft(timing=timing), trace)
            gains.append(base.amat - soft.amat)
        assert gains[0] < gains[1] < gains[2]


class TestBlocking:
    def test_soft_tolerates_larger_blocks(self):
        """Figure 11a: software assistance flattens the block-size curve."""
        from repro.workloads import get_blocked_mv_trace

        small, large = 20, 300
        std_small = simulate(
            presets.standard(), get_blocked_mv_trace(small, SCALE)
        ).amat
        std_large = simulate(
            presets.standard(), get_blocked_mv_trace(large, SCALE)
        ).amat
        soft_large = simulate(
            presets.soft(), get_blocked_mv_trace(large, SCALE)
        ).amat
        # The standard cache degrades at the large block; Soft holds up.
        degradation_std = std_large / std_small
        assert soft_large < std_large
        assert soft_large / std_small < degradation_std
