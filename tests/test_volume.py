"""Tests for the volume-aware tagging refinement."""

import pytest

from repro.compiler import (
    Array,
    ArrayRef,
    Loop,
    analyze_nest,
    nest,
    var,
)
from repro.compiler.volume import (
    DEFAULT_RETENTION_REFS,
    UNREACHABLE,
    group_reuse_distance,
    reachable,
    self_reuse_distance,
)
from repro.errors import CompilerError
from repro.compiler.affine import Affine

i, j, k = var("i"), var("j"), var("k")


def offset(**coefficients):
    return Affine.build(0, **coefficients)


class TestSelfDistance:
    def test_invariant_in_outer_loop(self):
        loops = (Loop("i", 0, 10), Loop("j", 0, 100))
        # X(j): reuse carried by i; one i-iteration issues 100*3 refs.
        assert self_reuse_distance(offset(j=1), loops, 3) == 300

    def test_innermost_carrier_preferred(self):
        loops = (Loop("i", 0, 10), Loop("j", 0, 100), Loop("k", 0, 5))
        # X(j): invariant in both i and k; k gives the short distance.
        assert self_reuse_distance(offset(j=1), loops, 2) == 2

    def test_no_carrier(self):
        loops = (Loop("i", 0, 10), Loop("j", 0, 100))
        assert self_reuse_distance(offset(i=1, j=1), loops, 3) == UNREACHABLE

    def test_opaque_loop_not_a_carrier(self):
        loops = (Loop("i", 0, 10, opaque=True), Loop("j", 0, 100))
        assert self_reuse_distance(offset(j=1), loops, 3) == UNREACHABLE


class TestGroupDistance:
    def test_same_offset_pair(self):
        loops = (Loop("j", 0, 100),)
        assert group_reuse_distance(0, offset(j=1), loops, 4) == 0

    def test_carried_by_matching_coefficient(self):
        loops = (Loop("i", 0, 10), Loop("j", 0, 100))
        # B(j, i) vs B(j, i+1): difference 100 = coefficient of i.
        assert group_reuse_distance(100, offset(j=1, i=100), loops, 6) == 600

    def test_multiple_iterations(self):
        loops = (Loop("j", 0, 100),)
        # Y(k) vs Y(k+6): 6 iterations of a stride-1 loop.
        assert group_reuse_distance(6, offset(j=1), loops, 5) == 30

    def test_dependence_beyond_trip_count(self):
        loops = (Loop("j", 0, 4),)
        assert group_reuse_distance(6, offset(j=1), loops, 5) == UNREACHABLE

    def test_non_divisible_difference(self):
        loops = (Loop("j", 0, 100),)
        assert group_reuse_distance(3, offset(j=2), loops, 5) == UNREACHABLE


class TestReachable:
    def test_budget(self):
        assert reachable(DEFAULT_RETENTION_REFS)
        assert not reachable(DEFAULT_RETENTION_REFS + 1)
        assert reachable(100, retention_refs=100)


class TestPolicyInAnalysis:
    def _mv(self, n):
        return nest(
            [Loop("j1", 0, 8), Loop("j2", 0, n)],
            body=[ArrayRef("A", (j, i) if False else (var("j2"), var("j1"))),
                  ArrayRef("X", (var("j2"),))],
        ), {"A": Array("A", (n, 8)), "X": Array("X", (n,))}

    def test_reachable_reuse_keeps_tag(self):
        loop, arrays = self._mv(1000)  # distance 2000 < 5000
        tags = analyze_nest(loop, arrays, policy="volume-aware")
        assert tags.body[1].temporal

    def test_unreachable_reuse_drops_tag(self):
        loop, arrays = self._mv(4000)  # distance 8000 > 5000
        tags = analyze_nest(loop, arrays, policy="volume-aware")
        assert not tags.body[1].temporal
        assert any("retention budget" in r for r in tags.body[1].reasons)

    def test_elementary_always_tags(self):
        loop, arrays = self._mv(4000)
        tags = analyze_nest(loop, arrays, policy="elementary")
        assert tags.body[1].temporal

    def test_custom_retention(self):
        loop, arrays = self._mv(1000)
        tags = analyze_nest(
            loop, arrays, policy="volume-aware", retention_refs=100
        )
        assert not tags.body[1].temporal

    def test_group_pairs_stay_tagged(self):
        v = {"V": Array("V", (64,))}
        loop = nest(
            [Loop("j", 0, 8)],
            [ArrayRef("V", (j,)), ArrayRef("V", (j,), is_write=True)],
        )
        tags = analyze_nest(loop, v, policy="volume-aware")
        assert tags.body[0].temporal and tags.body[1].temporal

    def test_unknown_policy_rejected(self):
        loop, arrays = self._mv(100)
        with pytest.raises(CompilerError):
            analyze_nest(loop, arrays, policy="magic")

    def test_directive_overrides_policy(self):
        arrays = {"X": Array("X", (4000,))}
        loop = nest(
            [Loop("j1", 0, 8), Loop("j2", 0, 4000)],
            [ArrayRef("X", (var("j2"),), temporal=True)],
        )
        tags = analyze_nest(loop, arrays, policy="volume-aware")
        assert tags.body[0].temporal
