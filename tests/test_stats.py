"""Tests for instrumentation statistics (figure 4)."""

import pytest

from repro.memtrace import (
    FIG4B_DISTRIBUTION,
    TAG_CATEGORIES,
    gap_histogram,
    tag_profile,
)

from conftest import make_trace


class TestTagProfile:
    def test_all_categories_present(self):
        p = tag_profile(make_trace([0]))
        assert set(p.fractions) == set(TAG_CATEGORIES)

    def test_category_assignment(self):
        t = make_trace(
            [0, 8, 16, 24],
            temporal=[False, False, True, True],
            spatial=[False, True, False, True],
        )
        p = tag_profile(t)
        assert p.fractions["no temporal, no spatial"] == 0.25
        assert p.fractions["no temporal, spatial"] == 0.25
        assert p.fractions["temporal, no spatial"] == 0.25
        assert p.fractions["temporal, spatial"] == 0.25

    def test_aggregates(self):
        t = make_trace(
            [0, 8, 16, 24],
            temporal=[True, True, False, False],
            spatial=[True, False, True, False],
        )
        p = tag_profile(t)
        assert p.temporal_fraction == 0.5
        assert p.spatial_fraction == 0.5
        assert p.untagged_fraction == 0.25

    def test_fractions_sum_to_one(self):
        t = make_trace([0, 8], temporal=[True, False], spatial=[False, False])
        assert abs(sum(tag_profile(t).fractions.values()) - 1.0) < 1e-9

    def test_empty_trace(self):
        p = tag_profile(make_trace([]))
        assert sum(p.fractions.values()) == 0.0


class TestGapHistogram:
    def test_uses_trace_gaps(self):
        t = make_trace([0, 8, 16], gaps=[1, 1, 25])
        h = gap_histogram(t, FIG4B_DISTRIBUTION)
        assert h[1] == pytest.approx(2 / 3)
        assert h[25] == pytest.approx(1 / 3)
