"""Tests for subscript aliases and subscript expansion (section 3.2)."""

import pytest

from repro.compiler import (
    Array,
    ArrayRef,
    Loop,
    Program,
    analyze_nest,
    generate_trace,
    nest,
    var,
)
from repro.errors import CompilerError
from repro.memtrace import UNIT_GAPS

j, k, kk = var("j"), var("k"), var("kk")


def aliased_nest(**kwargs):
    return nest(
        [Loop("i", 0, 4), Loop("k", 0, 8)],
        body=[ArrayRef("A", (kk,))],
        aliases={"kk": k * 2 + 1},
        **kwargs,
    )


def arrays():
    return {"A": Array("A", (17,))}


class TestValidation:
    def test_alias_cannot_shadow_loop_index(self):
        with pytest.raises(CompilerError):
            nest(
                [Loop("k", 0, 8)],
                [ArrayRef("A", (k,))],
                aliases={"k": k + 1},
            )

    def test_alias_must_use_known_indices(self):
        with pytest.raises(CompilerError):
            nest(
                [Loop("k", 0, 8)],
                [ArrayRef("A", (kk,))],
                aliases={"kk": var("zz") * 2},
            )


class TestExpansion:
    def test_expanded_rewrites_subscripts(self):
        expanded = aliased_nest().expanded()
        subscript = expanded.body[0].subscripts[0]
        assert subscript.coefficient("k") == 2
        assert subscript.const == 1
        assert not expanded.aliases

    def test_expanded_noop_without_aliases(self):
        plain = nest([Loop("k", 0, 8)], [ArrayRef("A", (k,))])
        assert plain.expanded() is plain

    def test_resolve_aliases(self):
        expression = aliased_nest().resolve_aliases(kk + 3)
        assert expression.coefficient("k") == 2
        assert expression.const == 4


class TestAnalysis:
    def test_aliased_ref_untagged_by_default(self):
        tags = analyze_nest(aliased_nest(), arrays())
        assert not tags.body[0].temporal and not tags.body[0].spatial
        assert any("subscript expansion" in r for r in tags.body[0].reasons)

    def test_expansion_recovers_tags(self):
        tags = analyze_nest(aliased_nest(), arrays(), expand_subscripts=True)
        # stride 2 < 4 -> spatial; invariant in i -> temporal.
        assert tags.body[0].spatial and tags.body[0].temporal

    def test_directive_still_overrides(self):
        loop = nest(
            [Loop("i", 0, 4), Loop("k", 0, 8)],
            body=[ArrayRef("A", (kk,), temporal=True)],
            aliases={"kk": k * 2 + 1},
        )
        tags = analyze_nest(loop, arrays())
        assert tags.body[0].temporal


class TestGeneration:
    def test_addresses_always_expanded(self):
        program = Program("p", [Array("A", (17,))], [aliased_nest()])
        trace = generate_trace(program, gap_distribution=UNIT_GAPS)
        # kk = 2k + 1 over k = 0..7: odd elements.
        assert trace.addresses[:8].tolist() == [8 * (2 * v + 1) for v in range(8)]

    def test_expansion_changes_only_tags(self):
        program = Program("p", [Array("A", (17,))], [aliased_nest()])
        plain = generate_trace(program, gap_distribution=UNIT_GAPS)
        expanded = generate_trace(
            program, gap_distribution=UNIT_GAPS, expand_subscripts=True
        )
        assert (plain.addresses == expanded.addresses).all()
        assert not plain.spatial.any()
        assert expanded.spatial.all()
