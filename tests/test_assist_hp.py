"""Tests for the HP-7200-style assist cache."""

import pytest

from repro.core import HPAssistCache
from repro.errors import ConfigError
from repro.sim import CacheGeometry, MemoryTiming

TIMING = MemoryTiming(latency=10, bus_bytes_per_cycle=16)
PENALTY = 12


def make_cache(assist_lines=2):
    return HPAssistCache(
        CacheGeometry(128, 32, 1), TIMING, assist_lines=assist_lines
    )


def access(cache, address, now, write=False, temporal=False, spatial=False):
    return cache.access(address, write, temporal=temporal, spatial=spatial, now=now)


class TestBasics:
    def test_needs_assist_lines(self):
        with pytest.raises(ConfigError):
            HPAssistCache(CacheGeometry(128, 32, 1), TIMING, assist_lines=0)

    def test_miss_fills_assist_not_main(self):
        c = make_cache()
        assert access(c, 0, now=0) == PENALTY
        assert c.in_assist(0) and not c.in_main(0)

    def test_assist_hit_costs_one_cycle(self):
        # Parallel probe: the HP design's key timing advantage.
        c = make_cache()
        access(c, 0, now=0)
        assert access(c, 8, now=100) == 1
        assert c.stats.hits_assist == 1

    def test_unhinted_line_promotes_on_fifo_exit(self):
        c = make_cache(assist_lines=2)
        access(c, 0, now=0)
        access(c, 32, now=100)
        access(c, 64, now=200)  # FIFO ages line 0 out -> promoted
        assert c.in_main(0)
        assert c.stats.bounce_backs == 1  # promotion counter
        assert access(c, 0, now=300) == 1
        assert c.stats.hits_main == 1

    def test_spatial_only_line_discarded(self):
        c = make_cache(assist_lines=2)
        access(c, 0, now=0, spatial=True)          # spatial-only hint
        access(c, 32, now=100)
        access(c, 64, now=200)                     # line 0 ages out
        assert not c.in_main(0) and not c.in_assist(0)
        assert access(c, 0, now=300) == PENALTY    # it never polluted main

    def test_temporal_hint_promotes(self):
        c = make_cache(assist_lines=2)
        access(c, 0, now=0, temporal=True, spatial=True)
        access(c, 32, now=100)
        access(c, 64, now=200)
        assert c.in_main(0)

    def test_temporal_touch_clears_hint(self):
        c = make_cache(assist_lines=2)
        access(c, 0, now=0, spatial=True)           # hinted spatial-only
        access(c, 8, now=100, temporal=True)        # later temporal touch
        access(c, 32, now=200)
        access(c, 64, now=300)
        assert c.in_main(0)                         # promoted after all


class TestWrites:
    def test_dirty_discard_writes_back(self):
        c = make_cache(assist_lines=1)
        access(c, 0, now=0, write=True, spatial=True)
        access(c, 32, now=100)  # ages out the dirty spatial-only line
        assert c.stats.writebacks == 1

    def test_dirty_promotion_keeps_data(self):
        c = make_cache(assist_lines=1)
        access(c, 0, now=0, write=True)
        access(c, 32, now=100)  # promotes dirty line 0 to main
        assert c.stats.writebacks == 0
        assert c.in_main(0)

    def test_promotion_evicts_main_occupant(self):
        c = make_cache(assist_lines=1)
        access(c, 0, now=0)
        access(c, 32, now=100)      # promotes 0
        access(c, 128, now=200)     # into assist
        access(c, 160, now=300)     # promotes 128, evicting 0 (same set)
        assert c.in_main(128) and not c.in_main(0)


class TestAccounting:
    def test_conservation(self):
        c = make_cache()
        for k, addr in enumerate([0, 8, 32, 0, 64, 96, 0]):
            access(c, addr, now=100 * k)
        s = c.stats
        assert s.refs == s.hits_main + s.hits_assist + s.misses

    def test_reset(self):
        c = make_cache()
        access(c, 0, now=0)
        c.reset()
        assert c.stats.refs == 0
        assert not c.in_assist(0)
