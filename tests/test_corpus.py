"""Trace-corpus registry: manifests, fingerprints, lazy stores, sweeps."""

import json
import os
import sys

import pytest

from repro.errors import ConfigError
from repro.harness.parallel import ResultCache
from repro.memtrace.store import TraceStore
from repro.stream import is_store
from repro.stream.corpus import Corpus, corpus_root, run_corpus


def write_din(path, records):
    with open(path, "w") as handle:
        for label, address in records:
            handle.write(f"{label} {address:x}\n")


@pytest.fixture
def cache_root(tmp_path, monkeypatch):
    root = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
    return root


@pytest.fixture
def corpus(tmp_path, cache_root):
    """A three-entry corpus: one external din + two synthetic."""
    din = tmp_path / "sample.din"
    write_din(din, [(0, 0x100 + 8 * i) for i in range(64)])
    c = Corpus(tmp_path / "corpus.json")
    c.add_external("sample", din)
    c.add_synthetic("irm1", "irm", n_lines=128, refs=2000, seed=1)
    c.add_synthetic("scan1", "scan", array_bytes=16384, passes=2)
    c.save()
    return c


class TestManifest:
    def test_round_trip(self, corpus):
        loaded = Corpus.load(corpus.path)
        assert sorted(loaded.entries) == ["irm1", "sample", "scan1"]
        for name in loaded.entries:
            assert loaded.entries[name].sha256 == corpus.entries[name].sha256

    def test_fingerprints_are_stable(self, corpus, tmp_path, cache_root):
        # Re-registering identical content yields identical fingerprints.
        other = Corpus(tmp_path / "other.json")
        other.add_external("sample", tmp_path / "sample.din")
        other.add_synthetic("irm1", "irm", n_lines=128, refs=2000, seed=1)
        for name in ("sample", "irm1"):
            assert other.entries[name].sha256 == corpus.entries[name].sha256

    def test_duplicate_name_rejected(self, corpus, tmp_path):
        with pytest.raises(ConfigError, match="already has an entry"):
            corpus.add_synthetic("irm1", "irm", n_lines=8, refs=10)

    def test_bad_entry_names_rejected(self, tmp_path):
        c = Corpus(tmp_path / "c.json")
        with pytest.raises(ConfigError, match="name"):
            c.add_synthetic("../escape", "irm", n_lines=8, refs=10)

    def test_unknown_generator_rejected(self, tmp_path):
        c = Corpus(tmp_path / "c.json")
        with pytest.raises(ConfigError, match="unknown distribution"):
            c.add_synthetic("x", "zipf", refs=10)

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            Corpus.load(tmp_path / "nope.json")

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError, match="not valid JSON"):
            Corpus.load(path)

    def test_toml_manifest_gated_or_read(self, tmp_path):
        path = tmp_path / "c.toml"
        path.write_text(
            "version = 1\n"
            'name = "toml-corpus"\n'
            "[traces.irm1]\n"
            'kind = "synthetic"\n'
            'generator = "irm"\n'
            "[traces.irm1.params]\n"
            "n_lines = 64\n"
            "refs = 100\n"
        )
        if sys.version_info >= (3, 11):
            loaded = Corpus.load(path)
            assert loaded.name == "toml-corpus"
            assert loaded.entries["irm1"].payload["generator"] == "irm"
            with pytest.raises(ConfigError, match="JSON"):
                loaded.save()
        else:
            with pytest.raises(ConfigError, match="3.11"):
                Corpus.load(path)


class TestVerify:
    def test_all_ok(self, corpus):
        rows = corpus.verify()
        assert all(row["ok"] for row in rows)
        assert not any(row["fetched"] for row in rows)

    def test_source_drift_detected(self, corpus, tmp_path):
        write_din(tmp_path / "sample.din", [(0, 0xDEAD)])
        rows = {row["name"]: row for row in corpus.verify()}
        assert not rows["sample"]["ok"]
        assert any("drift" in p for p in rows["sample"]["problems"])
        assert rows["irm1"]["ok"]

    def test_missing_source_detected(self, corpus, tmp_path):
        os.unlink(tmp_path / "sample.din")
        rows = {row["name"]: row for row in corpus.verify()}
        assert not rows["sample"]["ok"]
        assert any("missing" in p for p in rows["sample"]["problems"])

    def test_unknown_entry_rejected(self, corpus):
        with pytest.raises(ConfigError, match="no entry"):
            corpus.verify(["ghost"])


class TestFetch:
    def test_lazy_materialisation(self, corpus, cache_root):
        store = corpus.fetch("irm1")
        assert is_store(store.path)
        assert len(store) == 2000
        assert store.path.parent == corpus_root() / "stores"
        # The store fingerprint matches the manifest identity for
        # synthetic entries (content == definition).
        assert store.fingerprint() == corpus.entries["irm1"].sha256

    def test_external_ingestion(self, corpus):
        store = corpus.fetch("sample")
        assert len(store) == 64
        trace = store.load()
        assert not trace.is_write.any()

    def test_fetch_hit_reuses_and_refreshes_mtime(self, corpus):
        store = corpus.fetch("scan1")
        manifest = store.path / "manifest.json"
        old = manifest.stat().st_mtime - 3600
        os.utime(manifest, (old, old))
        again = corpus.fetch("scan1")
        assert again.path == store.path
        assert manifest.stat().st_mtime > old + 1800

    def test_no_tmp_left_behind(self, corpus):
        corpus.fetch("irm1")
        stores = corpus_root() / "stores"
        assert not [p for p in stores.iterdir() if p.name.startswith(".tmp")]

    def test_verify_audits_fetched_store(self, corpus):
        store = corpus.fetch("irm1")
        rows = {row["name"]: row for row in corpus.verify()}
        assert rows["irm1"]["fetched"] and rows["irm1"]["ok"]
        # Corrupt one chunk: verify must notice.
        chunk = next((store.path / "chunks").glob("chunk-*.npz"))
        chunk.write_bytes(b"garbage")
        rows = {row["name"]: row for row in corpus.verify()}
        assert not rows["irm1"]["ok"]
        assert any("corrupt" in p for p in rows["irm1"]["problems"])


class TestPruneInteraction:
    """`repro cache prune`/`clear` must never touch corpus stores."""

    def _fill_cache(self, cache, n=4):
        from repro.sim.result import SimResult

        for i in range(n):
            cache.put(
                ResultCache.key(f"trace{i}", "spec", "auto"),
                SimResult(cache="c", trace=f"t{i}", refs=10, cycles=10),
            )

    def test_prune_to_zero_spares_corpus_stores(self, corpus, cache_root):
        store = corpus.fetch("irm1")
        cache = ResultCache(cache_root)
        self._fill_cache(cache)
        assert len(cache) == 4
        removed, _ = cache.prune(0)
        assert removed == 4
        assert len(cache) == 0
        # The registered store survived, chunks intact.
        assert is_store(store.path)
        reopened = TraceStore.open(store.path)
        assert len(reopened.load()) == 2000

    def test_clear_spares_corpus_stores(self, corpus, cache_root):
        corpus.fetch("scan1")
        cache = ResultCache(cache_root)
        self._fill_cache(cache)
        cache.clear()
        rows = {row["name"]: row for row in corpus.verify()}
        assert rows["scan1"]["fetched"] and rows["scan1"]["ok"]

    def test_size_accounting_excludes_corpus(self, corpus, cache_root):
        cache = ResultCache(cache_root)
        self._fill_cache(cache, n=2)
        before = cache.size_bytes()
        corpus.fetch("irm1")  # megabytes of chunks under the same root
        assert cache.size_bytes() == before
        assert len(cache) == 2

    def test_get_refreshes_mtime_with_store_dirs_present(
        self, corpus, cache_root
    ):
        # Regression: the LRU mtime refresh on hit must keep working
        # when corpus store directories share the cache root.
        from repro.sim.result import SimResult

        corpus.fetch("irm1")
        cache = ResultCache(cache_root)
        key = ResultCache.key("t", "s", "auto")
        cache.put(key, SimResult(cache="c", trace="t", refs=1, cycles=1))
        path = cache._path(key)
        old = path.stat().st_mtime - 3600
        os.utime(path, (old, old))
        assert cache.get(key) is not None
        assert path.stat().st_mtime > old + 1800
        # ...and prune order still follows use, not corpus contents.
        other = ResultCache.key("t2", "s", "auto")
        cache.put(other, SimResult(cache="c", trace="t2", refs=1, cycles=1))
        stale = cache._path(other)
        os.utime(stale, (old, old))
        removed, _ = cache.prune(path.stat().st_size)
        assert removed == 1
        assert cache.get(key) is not None
        assert cache.get(other) is None


class TestRunCorpus:
    def test_rows_geomean_and_cache_hits(self, corpus, cache_root):
        payload = run_corpus(corpus, ["standard", "soft"], jobs=1)
        assert payload["corpus"] == "corpus"
        assert payload["traces"] == ["irm1", "sample", "scan1"]
        assert len(payload["rows"]) == 6
        for row in payload["rows"]:
            assert row["refs"] > 0
            assert len(row["fingerprint"]) == 64
        for config in ("standard", "soft"):
            summary = payload["geomean"][config]
            assert summary["amat"] and summary["amat"] > 1.0
        # Second run: identical rows, served from the result cache.
        cache = ResultCache(cache_root)
        assert len(cache) == 6
        cache.hits = cache.misses = 0
        again = run_corpus(corpus, ["standard", "soft"], jobs=1, cache=cache)
        assert again["rows"] == payload["rows"]
        assert cache.hits == 6 and cache.misses == 0

    def test_survives_prune_between_runs(self, corpus, cache_root):
        first = run_corpus(corpus, ["standard"], jobs=1)
        cache = ResultCache(cache_root)
        cache.prune(0)
        second = run_corpus(corpus, ["standard"], jobs=1)
        assert second["rows"] == first["rows"]

    def test_needs_presets_and_entries(self, corpus, tmp_path):
        with pytest.raises(ConfigError, match="at least one preset"):
            run_corpus(corpus, [])
        empty = Corpus(tmp_path / "empty.json")
        with pytest.raises(ConfigError, match="no entries"):
            run_corpus(empty, ["standard"])


class TestServeIntegration:
    def test_resolve_trace_accepts_corpus_refs(self, corpus, cache_root):
        from repro.serve.service import ServeConfig, SimulationService

        service = SimulationService(ServeConfig(cache=None, workers=1))
        cell = service.resolve_cell(
            {
                "trace": {"corpus": str(corpus.path), "entry": "irm1"},
                "config": "standard",
            }
        )
        assert cell.trace_label.endswith("::irm1")
        # Synthetic entries' manifest identity IS the trace fingerprint,
        # so the cell keys exactly like any other delivery of the trace.
        assert cell.key == ResultCache.key(
            corpus.entries["irm1"].sha256,
            cell.spec.fingerprint(),
            cell.engine,
        )

    def test_resolve_trace_needs_entry(self, corpus, cache_root):
        from repro.serve.service import ServeConfig, SimulationService

        service = SimulationService(ServeConfig(cache=None, workers=1))
        with pytest.raises(ConfigError, match="entry"):
            service.resolve_cell(
                {"trace": {"corpus": str(corpus.path)}, "config": "standard"}
            )


class TestCLI:
    def run_cli(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_add_list_verify_fetch_run(
        self, tmp_path, cache_root, capsys
    ):
        din = tmp_path / "s.din"
        write_din(din, [(0, 0x40 * i) for i in range(32)])
        manifest = str(tmp_path / "c.json")
        assert self.run_cli("corpus", "add", manifest, "ext", "--trace", str(din)) == 0
        assert (
            self.run_cli(
                "corpus", "add", manifest, "syn", "--generator", "scan",
                "--param", "array_bytes=8192", "--param", "passes=2",
            )
            == 0
        )
        assert self.run_cli("corpus", "list", manifest) == 0
        out = capsys.readouterr().out
        assert "ext" in out and "syn" in out
        assert self.run_cli("corpus", "verify", manifest) == 0
        assert self.run_cli("corpus", "fetch", manifest) == 0
        summary = tmp_path / "summary.json"
        assert (
            self.run_cli(
                "corpus", "run", manifest, "standard", "--out", str(summary)
            )
            == 0
        )
        payload = json.loads(summary.read_text())
        assert len(payload["rows"]) == 2
        assert "geomean" in payload
        out = capsys.readouterr().out
        assert "geomean" in out

    def test_add_rejects_ambiguous_source(self, tmp_path, cache_root):
        manifest = str(tmp_path / "c.json")
        assert (
            self.run_cli("corpus", "add", manifest, "x") == 1
        )  # neither --trace nor --generator

    def test_verify_fails_on_drift(self, tmp_path, cache_root, capsys):
        din = tmp_path / "s.din"
        write_din(din, [(0, 0x100)])
        manifest = str(tmp_path / "c.json")
        assert self.run_cli("corpus", "add", manifest, "ext", "--trace", str(din)) == 0
        write_din(din, [(1, 0x200)])
        assert self.run_cli("corpus", "verify", manifest) == 1
        assert "drift" in capsys.readouterr().out

    def test_verify_oracle_cli(self, cache_root, capsys):
        assert (
            self.run_cli(
                "verify", "--oracle", "--refs", "4000",
                "--dist", "scan", "--config", "standard",
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "within analytic bounds" in out
