"""Regression: set-associative bounce-back buffer must not overflow a
main-cache set during a swap.

A buffer hit removes the entry from its buffer set; the swapped-out main
victim may map to a *different* buffer set, whose eviction can bounce a
line into the very main set the swap is filling — without the blocked-set
guard this overflows a direct-mapped set to two lines.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SoftCacheConfig, SoftwareAssistedCache
from repro.sim import MemoryTiming, simulate

from conftest import make_trace

TIMING = MemoryTiming(latency=10, bus_bytes_per_cycle=16)


def make_cache():
    return SoftwareAssistedCache(
        SoftCacheConfig(
            size_bytes=128, line_size=32, ways=1,
            bounce_back_lines=4, bounce_back_ways=2,  # 2 sets x 2 ways
            virtual_line_size=None, timing=TIMING,
        )
    )


addresses = st.integers(min_value=0, max_value=47).map(lambda k: k * 32)
streams = st.lists(
    st.tuples(addresses, st.booleans()), min_size=1, max_size=150
)


class TestSetAssociativeBufferSwaps:
    @settings(max_examples=200, deadline=None)
    @given(streams)
    def test_invariants_hold(self, stream):
        cache = make_cache()
        trace = make_trace(
            [a for a, _ in stream],
            temporal=[t for _, t in stream],
            gaps=[50] * len(stream),
        )
        result = simulate(cache, trace)
        cache.check_exclusive()
        assert result.refs == (
            result.hits_main + result.hits_assist + result.misses
        )

    def test_blocked_swap_set(self):
        # Directed scenario: buffer sets are keyed by line parity.
        c = make_cache()

        def access(addr, temporal=False, now=0):
            return c.access(addr, False, temporal=temporal, spatial=False, now=now)

        # Fill buffer set 0 (even lines) with temporal victims whose main
        # set is 0: lines 0, 256 (line numbers 0 and 8 — both even, both
        # main set 0).
        access(0, temporal=True, now=0)
        access(256, temporal=True, now=100)    # evicts 0 -> buffer set 0
        access(512, temporal=True, now=200)    # evicts 256 -> buffer set 0
        # A miss elsewhere in main set 0 whose victim is an even line:
        access(768, temporal=True, now=300)    # evicts 512 (even line 16)
        # Now hit line 0 in the buffer: the swap pops 768 from main set 0
        # and inserts it into buffer set 0 (full) -> eviction -> a
        # temporal even line wants to bounce into main set 0 mid-swap.
        access(0, now=400)
        c.check_exclusive()  # must not overflow main set 0
