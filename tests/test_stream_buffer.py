"""Unit tests for the Jouppi stream-buffer baseline."""

import pytest

from repro.sim import CacheGeometry, MemoryTiming, StreamBufferCache, simulate

from conftest import make_trace

TIMING = MemoryTiming(latency=10, bus_bytes_per_cycle=16)
PENALTY = 12


def make_cache(n_buffers=2, depth=4):
    return StreamBufferCache(
        CacheGeometry(128, 32, 1), TIMING, n_buffers=n_buffers, depth=depth
    )


def access(cache, address, now):
    return cache.access(address, False, temporal=False, spatial=False, now=now)


class TestStreamFollowing:
    def test_miss_allocates_stream(self):
        c = make_cache()
        access(c, 0, now=0)
        assert c.stats.misses == 1
        assert c.stats.prefetches_issued == 4  # depth lines queued

    def test_sequential_stream_hits_buffer(self):
        c = make_cache()
        access(c, 0, now=0)
        cycles = access(c, 32, now=1000)  # head of the stream, arrived
        assert cycles == 1
        assert c.stats.hits_assist == 1
        assert c.stats.prefetch_hits == 1

    def test_buffer_refills_after_head_hit(self):
        c = make_cache(depth=2)
        access(c, 0, now=0)       # stream holds lines 1, 2
        access(c, 32, now=1000)   # consumes line 1, prefetches line 3
        assert c.stats.prefetches_issued == 3

    def test_head_hit_installs_into_cache(self):
        c = make_cache()
        access(c, 0, now=0)
        access(c, 32, now=1000)
        assert access(c, 40, now=2000) == 1  # now a cache hit
        assert c.stats.hits_main == 1

    def test_in_flight_head_waits(self):
        c = make_cache()
        access(c, 0, now=0)  # busy until 12; line 1 arrives at 14
        cycles = access(c, 32, now=12)
        assert cycles > 1

    def test_long_stream_steady_state(self):
        c = make_cache(n_buffers=1)
        for k in range(32):
            access(c, 32 * k, now=1000 * k)
        assert c.stats.misses == 1  # only the initial miss
        assert c.stats.hits_assist == 31


class TestThrashing:
    def test_interleaved_streams_beyond_buffers(self):
        # Two buffers, three interleaved streams: LRU reallocation kills
        # every stream before its head is consumed.
        c = make_cache(n_buffers=2)
        bases = (0, 4096, 8192)
        for k in range(8):
            for base in bases:
                access(c, base + 32 * k, now=10_000 * (3 * k) + base)
        assert c.stats.hits_assist == 0
        assert c.stats.misses == 24

    def test_enough_buffers_handle_all_streams(self):
        c = make_cache(n_buffers=3)
        bases = (0, 4096, 8192)
        for k in range(8):
            for base in bases:
                access(c, base + 32 * k, now=10_000 * (3 * k) + base)
        assert c.stats.misses == 3  # one cold miss per stream


class TestAccounting:
    def test_traffic_includes_prefetches(self):
        c = make_cache(n_buffers=1, depth=4)
        access(c, 0, now=0)
        # 1 demand line + 4 prefetched lines, 4 words each.
        assert c.stats.words_fetched == 5 * 4

    def test_conservation(self):
        c = make_cache()
        trace = make_trace([0, 32, 64, 0, 4096, 32], gaps=[1000] * 6)
        result = simulate(c, trace)
        assert result.refs == (
            result.hits_main + result.hits_assist + result.misses
        )

    def test_reset(self):
        c = make_cache()
        access(c, 0, now=0)
        c.reset()
        assert c.stats.refs == 0
        assert access(c, 32, now=0) == PENALTY  # stream state cleared
