"""Behavioural tests of the software-assisted cache (sections 2.1-2.2).

Geometry: 128 B main cache, 32 B lines => 4 sets (addresses 128 apart
collide).  Timing: latency 10, 16 B/cycle bus => penalties: one line 12
cycles, two lines (a 64 B virtual line) 14 cycles; bounce-back hit 3
cycles plus a 2-cycle lock.
"""

import pytest

from repro.core import SoftCacheConfig, SoftwareAssistedCache
from repro.sim import MemoryTiming

TIMING = MemoryTiming(latency=10, bus_bytes_per_cycle=16)
MISS_1 = 12
MISS_2 = 14
ASSIST_HIT = 3


def make_cache(**overrides):
    config = dict(
        size_bytes=128,
        line_size=32,
        ways=1,
        bounce_back_lines=2,
        virtual_line_size=64,
        timing=TIMING,
    )
    config.update(overrides)
    return SoftwareAssistedCache(SoftCacheConfig(**config))


def access(cache, address, write=False, temporal=False, spatial=False, now=0):
    return cache.access(address, write, temporal=temporal, spatial=spatial, now=now)


class TestStandardModeBasics:
    """With everything disabled, behave exactly like a plain cache."""

    def make_plain(self):
        return make_cache(
            bounce_back_lines=0, virtual_line_size=None, use_temporal=False
        )

    def test_miss_then_hit(self):
        c = self.make_plain()
        assert access(c, 0, now=0) == MISS_1
        assert access(c, 0, now=100) == 1

    def test_conflict(self):
        c = self.make_plain()
        access(c, 0, now=0)
        access(c, 128, now=100)
        assert access(c, 0, now=200) == MISS_1

    def test_spatial_tag_ignored_without_virtual_lines(self):
        c = self.make_plain()
        access(c, 0, spatial=True, now=0)
        assert not c.in_main(32)


class TestVirtualLines:
    def test_spatial_miss_fetches_virtual_line(self):
        c = make_cache()
        assert access(c, 0, spatial=True, now=0) == MISS_2
        assert c.in_main(0) and c.in_main(32)
        assert c.stats.lines_fetched == 2
        assert c.stats.words_fetched == 8

    def test_virtual_line_alignment(self):
        # A miss in the *second* half of the virtual block fetches the
        # aligned block, not the next lines.
        c = make_cache()
        access(c, 32, spatial=True, now=0)
        assert c.in_main(0) and c.in_main(32)
        assert not c.in_main(64)

    def test_non_spatial_miss_fetches_one_line(self):
        c = make_cache()
        assert access(c, 0, spatial=False, now=0) == MISS_1
        assert not c.in_main(32)

    def test_present_lines_not_refetched(self):
        c = make_cache()
        access(c, 32, now=0)                       # line 1 cached
        cycles = access(c, 0, spatial=True, now=100)
        assert cycles == MISS_1                    # only line 0 fetched
        assert c.stats.lines_fetched == 2

    def test_virtual_line_larger(self):
        c = make_cache(size_bytes=256, virtual_line_size=128)
        access(c, 0, spatial=True, now=0)
        assert all(c.in_main(32 * k) for k in range(4))

    def test_write_miss_dirties_only_requested_line(self):
        c = make_cache()
        access(c, 0, write=True, spatial=True, now=0)
        access(c, 128, now=100)   # evict line 0 (dirty)
        access(c, 160, now=200)   # evict line 1 (clean)
        assert c.stats.writebacks == 0  # both went to the bounce-back
        # Push them out of the 2-entry bounce-back cache.
        access(c, 128 + 256, now=300)
        access(c, 160 + 256, now=400)
        assert c.stats.writebacks == 1  # only line 0 was dirty


class TestBounceBackVictim:
    """With temporal disabled the buffer is a plain victim cache."""

    def test_victim_hit_is_swap(self):
        c = make_cache(use_temporal=False, virtual_line_size=None)
        access(c, 0, now=0)
        access(c, 128, now=100)   # 0 evicted into the buffer
        assert access(c, 0, now=200) == ASSIST_HIT
        assert c.stats.hits_assist == 1 and c.stats.swaps == 1
        # Swap: 128 now sits in the buffer.
        assert c.in_main(0) and c.in_assist(128)

    def test_swap_locks_caches(self):
        c = make_cache(use_temporal=False, virtual_line_size=None)
        access(c, 0, now=0)
        access(c, 128, now=100)
        access(c, 0, now=200)     # swap: locked until 205
        assert access(c, 0, now=203) == 1 + 2  # waits out the lock

    def test_non_temporal_eviction_discarded(self):
        c = make_cache(use_temporal=False, virtual_line_size=None)
        for k, addr in enumerate((0, 128, 256, 384)):
            access(c, addr, now=100 * k)
        # Buffer holds {128->? } two most recent victims; line 0 fell out.
        assert access(c, 0, now=1000) == MISS_1

    def test_ping_pong_absorbed(self):
        # The figure 3b scenario: two lines in the same set alternate.
        c = make_cache(use_temporal=False, virtual_line_size=None)
        access(c, 0, now=0)
        access(c, 128, now=100)
        total_misses_before = c.stats.misses
        for k in range(10):
            access(c, 0 if k % 2 == 0 else 128, now=200 + 100 * k)
        assert c.stats.misses == total_misses_before  # all swaps, no misses


class TestBounceBack:
    def _evict_and_flush(self, c, start):
        """Evict line 0 from set 0, then push it out of the buffer with
        set-1 victims (which map to a different main set)."""
        access(c, 128, now=start)          # set 0: evicts line 0 -> buffer
        access(c, 32 + 512, now=start + 100)   # set 1 fill (fresh line)
        access(c, 160 + 512, now=start + 200)  # set 1: victim -> buffer
        access(c, 288 + 512, now=start + 300)  # set 1: buffer overflows

    def test_temporal_line_bounces_back(self):
        c = make_cache(virtual_line_size=None)
        access(c, 0, temporal=True, now=0)   # set 0, tagged
        access(c, 128, now=100)              # set 0: 0 -> buffer
        access(c, 32, now=200)               # set 1
        access(c, 160, now=300)              # set 1: 32 -> buffer
        access(c, 288, now=400)              # overflow: 0 bounces to set 0
        assert c.stats.bounce_backs == 1
        assert c.in_main(0)
        assert access(c, 0, now=1000) == 1

    def test_non_temporal_line_discarded(self):
        c = make_cache(virtual_line_size=None)
        access(c, 0, temporal=False, now=0)
        access(c, 128, now=100)
        access(c, 32, now=200)
        access(c, 160, now=300)
        access(c, 288, now=400)
        assert c.stats.bounce_backs == 0
        assert not c.in_main(0) and not c.in_assist(0)

    def test_same_set_bounce_aborted(self):
        # All victims collide in set 0: the bounced line would land in
        # the slot the miss is filling, so the bounce is cancelled (the
        # paper's "discarded when the requested line is stored" rule).
        c = make_cache(virtual_line_size=None)
        access(c, 0, temporal=True, now=0)
        access(c, 128, now=100)
        access(c, 256, now=200)
        access(c, 384, now=300)
        assert c.stats.bounce_backs == 0
        assert c.stats.bounce_aborts == 1
        assert not c.in_main(0)

    def test_temporal_bit_reset_after_bounce(self):
        c = make_cache(virtual_line_size=None)
        access(c, 0, temporal=True, now=0)
        access(c, 128, now=100)
        access(c, 32, now=200)
        access(c, 160, now=300)
        access(c, 288, now=400)              # bounce, bit reset
        assert c.in_main(0)
        assert c.temporal_bit(0) is False
        # Without re-tagging, the next trip through the buffer discards it.
        self._evict_and_flush(c, start=500)
        assert c.stats.bounce_backs == 1
        assert not c.in_main(0) and not c.in_assist(0)

    def test_no_reset_keeps_bouncing(self):
        c = make_cache(
            virtual_line_size=None, reset_temporal_on_bounce=False
        )
        access(c, 0, temporal=True, now=0)
        access(c, 128, now=100)
        access(c, 32, now=200)
        access(c, 160, now=300)
        access(c, 288, now=400)              # first bounce, bit kept
        assert c.stats.bounce_backs == 1
        assert c.temporal_bit(0) is True
        self._evict_and_flush(c, start=500)  # second trip bounces again
        assert c.stats.bounce_backs == 2
        assert c.in_main(0)

    def test_temporal_bit_set_on_hit(self):
        c = make_cache(virtual_line_size=None)
        access(c, 0, temporal=False, now=0)
        assert c.temporal_bit(0) is False
        access(c, 0, temporal=True, now=100)
        assert c.temporal_bit(0) is True

    def test_untagged_reference_leaves_bit_alone(self):
        c = make_cache(virtual_line_size=None)
        access(c, 0, temporal=True, now=0)
        access(c, 0, temporal=False, now=100)
        assert c.temporal_bit(0) is True

    def test_temporal_tag_on_buffer_hit(self):
        c = make_cache(virtual_line_size=None)
        access(c, 0, temporal=False, now=0)
        access(c, 128, now=100)          # 0 into the buffer, untagged
        access(c, 0, temporal=True, now=200)  # swap back, tag it
        assert c.temporal_bit(0) is True


class TestCoherence:
    def test_line_in_buffer_invalidates_slot(self):
        c = make_cache()  # VL = 64
        access(c, 32, now=0)             # line 1 in main
        access(c, 32 + 128, now=100)     # line 1 evicted into the buffer
        # Spatial miss on line 0 wants lines {0, 1}; line 1 is in the
        # buffer: fetched (cannot abort) but not installed.
        access(c, 0, spatial=True, now=200)
        assert c.stats.invalidations == 1
        assert c.in_main(0)
        assert c.in_assist(32)           # the buffer copy stays live
        assert c.stats.lines_fetched == 2 + 2  # both fetches counted

    def test_exclusivity_maintained(self):
        c = make_cache()
        pattern = [0, 128, 32, 0, 256, 128, 64, 384, 0, 32]
        for k, addr in enumerate(pattern):
            access(c, addr, temporal=(k % 2 == 0), spatial=(k % 3 == 0),
                   now=100 * k)
            c.check_exclusive()


class TestTemporalPriority:
    def test_non_temporal_evicted_first(self):
        c = make_cache(
            size_bytes=256, ways=2, bounce_back_lines=0,
            virtual_line_size=None, temporal_priority=True,
        )
        # Set 0 (4 sets of 2 ways): lines 0, 256, 512 collide.
        access(c, 0, temporal=True, now=0)
        access(c, 256, temporal=False, now=100)
        access(c, 512, now=200)  # should evict 256, not LRU 0
        assert c.in_main(0)
        assert not c.in_main(256)

    def test_all_temporal_falls_back_to_lru(self):
        c = make_cache(
            size_bytes=256, ways=2, bounce_back_lines=0,
            virtual_line_size=None, temporal_priority=True,
        )
        access(c, 0, temporal=True, now=0)
        access(c, 256, temporal=True, now=100)
        access(c, 512, now=200)  # plain LRU: evicts 0
        assert not c.in_main(0)
        assert c.in_main(256)


class TestAdmissionPolicy:
    def test_non_temporal_victims_skipped_when_disabled(self):
        c = make_cache(virtual_line_size=None, admit_non_temporal=False)
        access(c, 0, temporal=False, now=0)
        access(c, 128, now=100)  # victim 0 is non-temporal: discarded
        assert not c.in_assist(0)

    def test_temporal_victims_still_admitted(self):
        c = make_cache(virtual_line_size=None, admit_non_temporal=False)
        access(c, 0, temporal=True, now=0)
        access(c, 128, now=100)
        assert c.in_assist(0)


class TestTimingDetails:
    def test_miss_penalty_formula(self):
        c = make_cache()
        assert access(c, 0, spatial=True, now=0) == TIMING.miss_penalty(2, 32)

    def test_cache_locked_during_miss(self):
        c = make_cache()
        access(c, 0, now=0)  # busy until 12
        assert access(c, 0, now=6) == 6 + 1

    def test_buffer_hit_data_after_three_cycles(self):
        c = make_cache(virtual_line_size=None)
        access(c, 0, now=0)
        access(c, 128, now=100)
        assert access(c, 0, now=200) == ASSIST_HIT


class TestStats:
    def test_refs_conservation(self):
        c = make_cache()
        for k, addr in enumerate([0, 32, 0, 128, 0, 64]):
            access(c, addr, now=100 * k)
        s = c.stats
        assert s.refs == s.hits_main + s.hits_assist + s.misses

    def test_reset(self):
        c = make_cache()
        access(c, 0, spatial=True)
        c.reset()
        assert c.stats.refs == 0
        assert not c.in_main(0)
        assert len(c.bounce_back) == 0
