"""Telemetry subsystem: probes, classification, parity, exporters.

The subsystem's central contract is *partition- and engine-independence*:
a telemetry report is a function of (trace, configuration) alone — the
same whether the reference loop or the fast batch kernels ran, and
whether the trace was in memory or streamed at any chunk size.  These
tests pin that contract, the crafted-case semantics of each probe, the
sweep/artifact wiring, and the probes-off guards.
"""

import json

import numpy as np
import pytest

from repro.core.spec import CacheSpec
from repro.errors import ConfigError, TraceError
from repro.harness.runner import run_sweep
from repro.memtrace import Trace
from repro.presets import SPECS
from repro.sim.driver import simulate
from repro.stream import TraceStream
from repro.telemetry import (
    TelemetrySpec,
    analyze,
    read_jsonl,
    telemetry_key,
    write_report,
)

from conftest import make_trace


def tagged_trace(refs=4000, seed=7, name="tel"):
    """Dense random trace with tags, writes, gaps and ref_ids."""
    rng = np.random.default_rng(seed)
    addresses = rng.integers(0, 4096, refs, dtype=np.int64) * 8
    return Trace(
        addresses,
        rng.random(refs) < 0.3,
        rng.random(refs) < 0.2,
        rng.random(refs) < 0.2,
        rng.integers(0, 4, refs).astype(np.int64),
        name=name,
        ref_ids=((addresses // 8) % 17).astype(np.int64),
    )


def payload_without_engine(report):
    """Comparable report payload: everything but the engine label."""
    payload = report.to_dict()
    payload["run"].pop("engine")
    return payload


class TestParity:
    """One report per (trace, config) — however it was computed."""

    def test_reference_vs_fast_identical(self):
        trace = tagged_trace()
        spec = SPECS["standard"]
        ref = analyze(spec, trace, engine="reference")
        fast = analyze(spec, trace, engine="fast")
        assert ref.result.engine == "reference"
        assert fast.result.engine == "fast"
        assert payload_without_engine(ref) == payload_without_engine(fast)

    def test_fast_streamed_vs_in_memory(self):
        trace = tagged_trace()
        spec = SPECS["standard"]
        whole = analyze(spec, trace, engine="fast")
        streamed = analyze(
            spec,
            TraceStream.from_trace(trace, chunk_refs=333),
            engine="fast",
        )
        assert payload_without_engine(whole) == payload_without_engine(
            streamed
        )

    def test_soft_streamed_vs_in_memory(self):
        trace = tagged_trace(refs=2500)
        spec = SPECS["soft"]
        whole = analyze(spec, trace)
        streamed = analyze(
            spec, TraceStream.from_trace(trace, chunk_refs=77)
        )
        assert payload_without_engine(whole) == payload_without_engine(
            streamed
        )

    def test_window_partition_invariance(self):
        # Chunk boundaries never align with window boundaries here, and
        # a chunk size of 1 puts every reference on a boundary.
        trace = tagged_trace(refs=700)
        spec = SPECS["soft"]
        tel = TelemetrySpec(window_refs=96)
        baseline = analyze(spec, trace, telemetry=tel).windows
        for chunk_refs in (1, 13, 96, 500):
            windows = analyze(
                spec,
                TraceStream.from_trace(trace, chunk_refs=chunk_refs),
                telemetry=tel,
            ).windows
            assert windows == baseline

    def test_window_totals_match_counters(self):
        trace = tagged_trace()
        report = analyze(SPECS["soft"], trace, telemetry=TelemetrySpec(window_refs=512))
        result = report.result
        assert sum(w["refs"] for w in report.windows) == result.refs
        assert sum(w["misses"] for w in report.windows) == result.misses
        assert sum(w["cycles"] for w in report.windows) == result.cycles
        assert (
            sum(w["wb_stalls"] for w in report.windows)
            == result.write_buffer_stalls
        )


class TestMissClasses:
    """Crafted 3C cases on the 8KB/32B direct-mapped Standard cache."""

    def test_conflict_pair(self):
        # Two addresses 8 KB apart share a set; the fully-associative
        # shadow of the same capacity would keep both.
        trace = make_trace([0, 8192] * 50)
        report = analyze(SPECS["standard"], trace)
        classes = report.miss_classes
        assert classes["compulsory"] == 2
        assert classes["conflict"] == 98
        assert classes["capacity"] == 0

    def test_capacity_sweep(self):
        # Cyclic sweep over twice the cache's 256 lines: LRU of any
        # organisation misses every access; nothing is a conflict.
        lines = 512
        addresses = [line * 32 for line in range(lines)] * 2
        trace = make_trace(addresses)
        report = analyze(SPECS["standard"], trace)
        classes = report.miss_classes
        assert classes["compulsory"] == lines
        assert classes["capacity"] == lines
        assert classes["conflict"] == 0

    def test_compulsory_only(self):
        trace = make_trace([line * 32 for line in range(64)])
        classes = analyze(SPECS["standard"], trace).miss_classes
        assert classes["compulsory"] == 64
        assert classes["capacity"] == 0
        assert classes["conflict"] == 0

    def test_classes_sum_to_misses(self):
        trace = tagged_trace()
        for name in ("standard", "soft"):
            report = analyze(SPECS[name], trace)
            classes = report.miss_classes
            assert (
                classes["compulsory"]
                + classes["capacity"]
                + classes["conflict"]
                == report.result.misses
            )


class TestAssistImpact:
    def test_standard_has_no_assist_deltas(self):
        # The shadow is the same plain LRU cache, so save/pollution
        # counts vanish by construction on an unassisted configuration.
        report = analyze(SPECS["standard"], tagged_trace())
        assist = report.assist
        assert assist["saves"] == 0
        assert assist["pollution"] == 0
        assert assist["sibling_lines_fetched"] == 0

    def test_soft_counts_are_consistent(self):
        report = analyze(SPECS["soft"], tagged_trace())
        assist = report.assist
        result = report.result
        assert assist["bounce_backs"] == result.bounce_backs
        assert assist["hits_assist"] == result.hits_assist
        assert assist["net_saves"] == assist["saves"] - assist["pollution"]
        assert 0.0 <= assist["fetch_utilization"] <= 1.0
        assert (
            assist["sibling_lines_used"] <= assist["sibling_lines_fetched"]
        )

    def test_tag_audit_counts(self):
        report = analyze(SPECS["soft"], tagged_trace())
        for name in ("temporal", "spatial"):
            row = report.tag_audit[name]
            assert row["refs"] == report.result.refs
            assert 0.0 <= row["agreement"] <= 1.0
            assert 0.0 <= row["precision"] <= 1.0
            assert 0.0 <= row["recall"] <= 1.0


class TestAttributionProbe:
    def test_attribution_section(self):
        trace = tagged_trace()
        report = analyze(
            SPECS["standard"], trace, telemetry=TelemetrySpec(attribution=True)
        )
        rows = report.attribution
        assert rows, "attribution section missing"
        assert sum(r["refs"] for r in rows) == report.result.refs
        assert sum(r["misses"] for r in rows) == report.result.misses

    def test_attribution_requires_ref_ids(self):
        trace = make_trace([0, 32, 64])
        with pytest.raises(TraceError):
            analyze(
                SPECS["standard"],
                trace,
                telemetry=TelemetrySpec(attribution=True),
            )

    def test_attribute_api_engine_parity(self, monkeypatch):
        from repro.metrics.attribution import attribute

        trace = tagged_trace()
        spec = SPECS["standard"]
        monkeypatch.setenv("REPRO_ENGINE", "reference")
        ref = attribute(spec.build(), trace)
        monkeypatch.setenv("REPRO_ENGINE", "fast")
        fast = attribute(spec.build(), trace)
        assert ref.total_misses == fast.total_misses
        assert ref.total_refs == fast.total_refs
        for rid, profile in ref.per_instruction.items():
            other = fast.per_instruction[rid]
            assert (profile.refs, profile.misses, profile.cycles) == (
                other.refs, other.misses, other.cycles
            )


class TestGuards:
    def test_probed_run_requires_reset(self):
        trace = make_trace([0, 32])
        model = SPECS["standard"].build()
        probes = TelemetrySpec().build_probes(model)
        with pytest.raises(ConfigError):
            simulate(model, trace, reset=False, probes=probes)

    def test_probed_run_refuses_warmup(self):
        trace = make_trace([0, 32])
        model = SPECS["standard"].build()
        probes = TelemetrySpec().build_probes(model)
        with pytest.raises(ConfigError):
            simulate(model, trace, warmup_refs=1, probes=probes)

    def test_probed_counters_match_unprobed(self):
        trace = tagged_trace()
        for name in ("standard", "soft"):
            spec = SPECS[name]
            plain = simulate(spec.build(), trace)
            report = analyze(spec, trace)
            assert report.result.misses == plain.misses
            assert report.result.cycles == plain.cycles
            assert report.result.words_fetched == plain.words_fetched


class TestSpecAndKeys:
    def test_fingerprint_stability(self):
        assert TelemetrySpec().fingerprint() == TelemetrySpec().fingerprint()
        assert (
            TelemetrySpec(window_refs=128).fingerprint()
            != TelemetrySpec(window_refs=256).fingerprint()
        )

    def test_telemetry_key_components(self):
        base = telemetry_key("t", "s", "fast", "tel")
        assert telemetry_key("t", "s", "reference", "tel") != base
        assert telemetry_key("t", "s", "fast", "tel2") != base
        assert telemetry_key("t2", "s", "fast", "tel") != base

    def test_duplicate_probe_keys_rejected(self):
        from repro.telemetry import ProbeSet, WindowProbe

        with pytest.raises(ConfigError):
            ProbeSet([WindowProbe(64), WindowProbe(128)])


class TestSweepTelemetry:
    def test_sweep_writes_artifacts(self, tmp_path):
        trace = tagged_trace(refs=1200)
        configs = {
            "std": CacheSpec.of("standard"), "soft": CacheSpec.of("soft")
        }
        sweep = run_sweep(
            {"tel": trace},
            configs,
            cache=tmp_path / "cache",
            telemetry=TelemetrySpec(window_refs=256),
            telemetry_dir=tmp_path / "tel",
        )
        assert set(sweep.telemetry["tel"]) == {"std", "soft"}
        for name, path in sweep.telemetry["tel"].items():
            lines = read_jsonl(path)
            head = lines[0]
            assert head["type"] == "report"
            assert head["run"]["misses"] == sweep.results["tel"][name].misses
            assert all(row["type"] == "window" for row in lines[1:])

    def test_result_cache_key_unchanged_by_telemetry(self, tmp_path):
        trace = tagged_trace(refs=800)
        configs = {"std": CacheSpec.of("standard")}
        cache_dir = tmp_path / "cache"
        plain = run_sweep({"tel": trace}, configs, cache=cache_dir)
        probed = run_sweep(
            {"tel": trace},
            configs,
            cache=cache_dir,
            telemetry=TelemetrySpec(),
            telemetry_dir=tmp_path / "tel",
        )
        # One shared cache entry: the probed run re-simulated (to write
        # its artifact) but keyed the result identically.
        assert len(list((cache_dir).glob("*/*/*.json"))) == 1
        assert plain.results["tel"]["std"] == probed.results["tel"]["std"]

    def test_cached_result_still_regenerates_missing_artifact(
        self, tmp_path
    ):
        import pathlib

        trace = tagged_trace(refs=800)
        configs = {"std": CacheSpec.of("standard")}
        tel = TelemetrySpec()
        kwargs = dict(
            cache=tmp_path / "cache",
            telemetry=tel,
            telemetry_dir=tmp_path / "tel",
        )
        first = run_sweep({"tel": trace}, configs, **kwargs)
        artifact = pathlib.Path(first.telemetry["tel"]["std"])
        artifact.unlink()
        second = run_sweep({"tel": trace}, configs, **kwargs)
        assert pathlib.Path(second.telemetry["tel"]["std"]) == artifact
        assert artifact.exists()

    def test_run_experiment_passthrough(self, tmp_path):
        from repro.experiments.common import ExperimentSpec, run_experiment

        spec = ExperimentSpec.create(
            "figX", "telemetry passthrough",
            {"std": CacheSpec.of("standard")},
        )
        result = run_experiment(
            spec,
            traces={"tel": tagged_trace(refs=600)},
            cache=tmp_path / "cache",
            telemetry=TelemetrySpec(window_refs=128),
            telemetry_dir=tmp_path / "tel",
        )
        assert "tel" in result.rows
        artifacts = list((tmp_path / "tel").glob("*/*.jsonl"))
        assert len(artifacts) == 1


class TestExporters:
    def test_write_report_files(self, tmp_path):
        report = analyze(
            SPECS["soft"], tagged_trace(refs=1500),
            telemetry=TelemetrySpec(window_refs=256),
        )
        paths = write_report(report, tmp_path / "out")
        assert set(paths) == {"report.json", "telemetry.jsonl", "windows.csv"}
        payload = json.loads(paths["report.json"].read_text())
        assert payload == report.to_dict()
        lines = read_jsonl(paths["telemetry.jsonl"])
        assert lines[0]["type"] == "report"
        assert len(lines) - 1 == len(report.windows)
        csv_rows = paths["windows.csv"].read_text().strip().splitlines()
        assert len(csv_rows) - 1 == len(report.windows)

    def test_format_renders_every_section(self):
        text = analyze(SPECS["soft"], tagged_trace()).format()
        for needle in (
            "windows", "miss classes", "assist impact", "tag audit"
        ):
            assert needle in text

    def test_report_json_roundtrip_is_json_safe(self):
        report = analyze(SPECS["standard"], tagged_trace(refs=600))
        json.dumps(report.to_dict())  # must not raise


class TestCLI:
    def test_analyze_benchmark(self, capsys, tmp_path):
        from repro.cli import main

        code = main(
            [
                "analyze", "--benchmark", "MV", "--scale", "tiny",
                "--window", "256", "--out", str(tmp_path / "out"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "miss classes" in out
        assert (tmp_path / "out" / "telemetry.jsonl").exists()

    def test_analyze_requires_one_input(self, capsys):
        from repro.cli import main

        assert main(["analyze"]) == 2
        assert main(
            ["analyze", "--benchmark", "MV", "--trace", "x.npz"]
        ) == 2

    def test_analyze_trace_store(self, capsys, tmp_path):
        from repro.cli import main
        from repro.memtrace import TraceStore

        trace = tagged_trace(refs=900)
        TraceStore.save(trace, tmp_path / "t.store", chunk_refs=128)
        code = main(
            [
                "analyze", "--trace", str(tmp_path / "t.store"),
                "--config", "standard", "--window", "128",
            ]
        )
        assert code == 0
        assert "miss classes" in capsys.readouterr().out


class TestProbeBench:
    def test_probe_bench_payload(self):
        from repro.harness.bench import run_probe_bench

        payload = run_probe_bench(refs=20_000, repeat=2)
        assert payload["budget"] == pytest.approx(0.02)
        rows = payload["results"]
        assert {(r["config"], r["engine"]) for r in rows} == {
            ("standard", "reference"),
            ("standard", "fast"),
            ("soft", "reference"),
            ("soft", "fast"),
        }
        for row in rows:
            assert "within_budget" in row
            # Generous sanity bound — the recorded BENCH_sim.json run
            # enforces the real 2% budget on a long, quiet measurement.
            assert row["probes_off_overhead"] < 0.25
            assert row["probed_refs_per_sec"] > 0
