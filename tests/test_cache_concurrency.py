"""Multi-writer safety of the on-disk ResultCache (serve hardening).

The serve workers, parallel sweeps and ``cache prune`` may all touch
one cache directory at once.  These tests race real processes against
each other and assert the documented guarantees: atomic publishes are
never observed torn, concurrent prunes read as misses (never errors),
and the staging ``.tmp-*`` files are invisible to enumeration.
"""

from __future__ import annotations

import json
import multiprocessing

from repro.harness.parallel import (
    ResultCache,
    payload_to_result,
    result_to_payload,
)
from repro.sim.result import SimResult


def _result_for(k: int) -> SimResult:
    return SimResult(
        cache="spec", trace=f"trace-{k}", refs=k + 1, cycles=(k + 1) * 7
    )


def _key_for(k: int) -> str:
    return ResultCache.key(f"trace-{k}", "spec-fp", "auto")


def _writer(root: str, n_keys: int, rounds: int) -> None:
    cache = ResultCache(root)
    for _ in range(rounds):
        for k in range(n_keys):
            cache.put(_key_for(k), _result_for(k))
            got = cache.get(_key_for(k))
            # A racing pruner may have deleted the entry (miss, never an
            # error); a successful read must round-trip exactly — every
            # writer publishes identical bytes per key, so a torn read
            # could only come from a non-atomic publish.
            if got is not None and got != _result_for(k):
                raise AssertionError(f"torn read for key {k}: {got}")


def _pruner(root: str, rounds: int) -> None:
    cache = ResultCache(root)
    for _ in range(rounds):
        cache.prune(max_bytes=256)  # keeps ~1 entry: maximal contention


class TestRacingWritersAndPruner:
    def test_stress(self, tmp_path):
        root = str(tmp_path / "cache")
        n_keys, rounds = 12, 30
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_writer, args=(root, n_keys, rounds))
            for _ in range(3)
        ] + [ctx.Process(target=_pruner, args=(root, 60))]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
        assert all(p.exitcode == 0 for p in procs), [p.exitcode for p in procs]

        # Post-race consistency: every surviving entry round-trips, no
        # staging files leaked, enumeration agrees with the filesystem.
        cache = ResultCache(root)
        survivors = 0
        for k in range(n_keys):
            got = cache.get(_key_for(k))
            if got is not None:
                assert got == _result_for(k)
                survivors += 1
        assert survivors <= len(cache) + n_keys  # gets may re-promote
        leftovers = [
            p for p in (tmp_path / "cache").rglob(".tmp-*") if p.is_file()
        ]
        assert leftovers == []


class TestShardedLayout:
    def test_put_publishes_to_two_level_shard(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key_for(0)
        cache.put(key, _result_for(0))
        expected = tmp_path / key[:2] / key[2:4] / f"{key}.json"
        assert expected.is_file()
        assert cache.get(key) == _result_for(0)
        assert len(cache) == 1

    def test_legacy_entry_found_and_promoted(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key_for(1)
        result = _result_for(1)
        legacy = tmp_path / key[:2] / f"{key}.json"
        legacy.parent.mkdir(parents=True)
        legacy.write_text(json.dumps(result_to_payload(result)))

        assert cache.get(key) == result  # found via the legacy fallback
        sharded = tmp_path / key[:2] / key[2:4] / f"{key}.json"
        assert sharded.is_file()  # promoted
        assert not legacy.exists()  # not double-counted
        assert len(cache) == 1
        # Second read takes the fast sharded path.
        assert cache.get(key) == result
        assert cache.hits == 2

    def test_enumeration_covers_both_layouts(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_key_for(2), _result_for(2))  # sharded
        key = _key_for(3)
        legacy = tmp_path / key[:2] / f"{key}.json"
        legacy.parent.mkdir(parents=True, exist_ok=True)
        legacy.write_text(json.dumps(result_to_payload(_result_for(3))))
        assert len(cache) == 2
        assert cache.size_bytes() > 0
        assert cache.clear() == 2
        assert len(cache) == 0


class TestPruneSafety:
    def test_prune_never_touches_staging_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_key_for(4), _result_for(4))
        shard = tmp_path / _key_for(4)[:2] / _key_for(4)[2:4]
        staged = shard / ".tmp-inflight.json"
        staged.write_text("{}")  # an in-flight concurrent publish
        removed, removed_bytes = cache.prune(max_bytes=0)
        assert removed == 1 and removed_bytes > 0
        assert staged.is_file()  # the stage survived the full prune

    def test_concurrent_deletion_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key_for(5)
        cache.put(key, _result_for(5))
        (tmp_path / key[:2] / key[2:4] / f"{key}.json").unlink()
        assert cache.get(key) is None
        assert cache.misses == 1

    def test_round_trip_is_lossless(self, tmp_path):
        result = _result_for(6)
        assert payload_to_result(result_to_payload(result)) == result
