"""Tests of the per-figure experiment drivers (tiny scale: structure and
basic sanity; the paper-shape assertions live in test_integration)."""

import math

import pytest

from repro.experiments import ALL_FIGURES
from repro.experiments import ablations
from repro.experiments.common import FigureResult
from repro.experiments.fig01_locality import reuse_distances, vector_lengths
from repro.experiments.fig03_pollution import bypass_study, victim_study
from repro.experiments.fig04_instrumentation import (
    tag_fractions,
    time_distribution,
)
from repro.experiments.fig06_summary import amat_breakdown, hit_repartition
from repro.experiments.fig08_line_size import physical_sweep, virtual_sweep
from repro.experiments.fig09_size_assoc import (
    associativity_study,
    cache_size_study,
)
from repro.experiments.fig10_latency import kernel_study, latency_sweep
from repro.experiments.fig11_blocking import block_size_sweep, copying_study
from repro.experiments.fig12_prefetch import prefetch_study
from repro.workloads import BENCHMARK_ORDER, KERNEL_ORDER

SCALE = "tiny"


class TestFigureResult:
    def test_add_and_lookup(self):
        r = FigureResult("f", "t", series=[])
        r.add("row", "s1", 1.0)
        r.add("row", "s2", 2.0)
        assert r.series == ["s1", "s2"]
        assert r.value("row", "s2") == 2.0
        assert r.row("row") == {"s1": 1.0, "s2": 2.0}
        assert r.column("s1") == {"row": 1.0}

    def test_table_contains_title(self):
        r = FigureResult("figX", "a title", series=[])
        r.add("row", "s", 1.0)
        assert "figX" in r.table() and "a title" in r.table()


class TestDistributionFigures:
    def test_fig1a_rows_and_sums(self):
        r = reuse_distances(SCALE)
        assert set(r.rows) == set(BENCHMARK_ORDER)
        for bench in BENCHMARK_ORDER:
            assert math.isclose(sum(r.row(bench).values()), 1.0, abs_tol=1e-9)

    def test_fig1b_rows_and_sums(self):
        r = vector_lengths(SCALE)
        for bench in BENCHMARK_ORDER:
            assert math.isclose(sum(r.row(bench).values()), 1.0, abs_tol=1e-9)

    def test_fig4a_sums(self):
        r = tag_fractions(SCALE)
        for bench in BENCHMARK_ORDER:
            assert math.isclose(sum(r.row(bench).values()), 1.0, abs_tol=1e-9)

    def test_fig4b_matches_model(self):
        r = time_distribution(SCALE)
        for row, cells in r.rows.items():
            assert abs(cells["model"] - cells["generated"]) < 0.02


class TestCacheFigures:
    def test_fig3a_bypass_worst(self):
        r = bypass_study(SCALE)
        worse = sum(
            r.value(b, "Bypass") > r.value(b, "Standard")
            for b in BENCHMARK_ORDER
        )
        assert worse >= 5  # bypassing hurts most benchmarks

    def test_fig3b_complete(self):
        r = victim_study(SCALE)
        assert set(r.series) == {"Standard", "Stand.+Victim", "Soft"}
        assert set(r.rows) == set(BENCHMARK_ORDER)

    def test_fig6a_soft_never_loses_to_standard(self):
        r = amat_breakdown(SCALE)
        for bench in BENCHMARK_ORDER:
            assert r.value(bench, "Soft") <= r.value(bench, "Standard") + 1e-9

    def test_fig6b_fractions_sum(self):
        r = hit_repartition(SCALE)
        for bench in BENCHMARK_ORDER:
            assert math.isclose(sum(r.row(bench).values()), 1.0, abs_tol=1e-9)

    def test_fig8_grids_complete(self):
        assert len(virtual_sweep(SCALE).series) == 4
        assert len(physical_sweep(SCALE).series) == 5

    def test_fig9a_has_all_sizes(self):
        r = cache_size_study(SCALE)
        assert len(r.series) == 4

    def test_fig9b_simplified_close_to_full(self):
        r = associativity_study(SCALE)
        for bench in BENCHMARK_ORDER:
            full = r.value(bench, "Soft 2-way")
            simplified = r.value(bench, "Simplified Soft 2-way")
            assert simplified <= full * 1.15  # "performs nearly as well"

    def test_fig10a_kernel_rows(self):
        r = kernel_study(SCALE)
        assert set(r.rows) == set(KERNEL_ORDER)

    def test_fig10b_gain_grows_with_latency(self):
        r = latency_sweep(SCALE)
        for bench in BENCHMARK_ORDER:
            row = r.row(bench)
            assert row["latency=30"] >= row["latency=5"] - 1e-9

    def test_fig11a_small_blocks(self):
        r = block_size_sweep(SCALE, block_sizes=(10, 20, 40))
        assert set(r.rows) == {"B=10", "B=20", "B=40"}

    def test_fig11b_two_dims(self):
        r = copying_study(SCALE, leading_dims=(116, 120))
        assert len(r.rows) == 2 and len(r.series) == 4

    def test_fig12_prefetch_helps(self):
        r = prefetch_study(SCALE)
        better = sum(
            r.value(b, "Soft+Prefetch") <= r.value(b, "Soft") + 1e-9
            for b in BENCHMARK_ORDER
        )
        assert better >= 6


class TestAblations:
    def test_all_ablations_run(self):
        for fn in (
            ablations.bounce_back_size,
            ablations.bounce_back_associativity,
            ablations.admission_policy,
            ablations.temporal_reset,
            ablations.physical_line,
        ):
            r = fn(SCALE)
            assert set(r.rows) == set(BENCHMARK_ORDER)
            assert len(r.series) >= 2


class TestRegistryOfFigures:
    def test_all_figures_registered(self):
        assert len(ALL_FIGURES) == 19
        assert set(ALL_FIGURES) >= {"fig1a", "fig6a", "fig9b", "fig12"}
