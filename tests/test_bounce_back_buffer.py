"""Unit tests for the bounce-back buffer structure."""

import pytest

from repro.core import BounceBackBuffer, make_entry
from repro.core.bounce_back import ADDR, PREFETCHED
from repro.errors import ConfigError


class TestValidation:
    def test_negative_lines(self):
        with pytest.raises(ConfigError):
            BounceBackBuffer(-1)

    def test_ways_must_divide(self):
        with pytest.raises(ConfigError):
            BounceBackBuffer(6, ways=4)

    def test_fully_associative_default(self):
        b = BounceBackBuffer(8)
        assert b.n_sets == 1 and b.ways == 8

    def test_set_associative(self):
        b = BounceBackBuffer(8, ways=4)
        assert b.n_sets == 2

    def test_ways_capped_at_lines(self):
        b = BounceBackBuffer(4, ways=16)
        assert b.ways == 4 and b.n_sets == 1


class TestInsertEvict:
    def test_insert_until_full(self):
        b = BounceBackBuffer(2)
        assert b.insert(make_entry(1)) is None
        assert b.insert(make_entry(2)) is None
        assert len(b) == 2

    def test_lru_eviction(self):
        b = BounceBackBuffer(2)
        b.insert(make_entry(1))
        b.insert(make_entry(2))
        evicted = b.insert(make_entry(3))
        assert evicted[ADDR] == 1
        assert 1 not in b and 2 in b and 3 in b

    def test_zero_capacity_returns_entry(self):
        b = BounceBackBuffer(0)
        e = make_entry(5)
        assert b.insert(e) is e

    def test_set_associative_eviction_within_set(self):
        b = BounceBackBuffer(4, ways=2)  # sets by address parity
        b.insert(make_entry(0))
        b.insert(make_entry(2))
        b.insert(make_entry(1))  # odd set, plenty of room
        evicted = b.insert(make_entry(4))  # even set full: evicts 0
        assert evicted[ADDR] == 0


class TestLookup:
    def test_find_does_not_reorder(self):
        b = BounceBackBuffer(2)
        b.insert(make_entry(1))
        b.insert(make_entry(2))
        assert b.find(1)[ADDR] == 1
        evicted = b.insert(make_entry(3))
        assert evicted[ADDR] == 1  # find() left 1 at LRU

    def test_find_missing(self):
        assert BounceBackBuffer(2).find(9) is None

    def test_lookup_remove(self):
        b = BounceBackBuffer(2)
        b.insert(make_entry(1))
        e = b.lookup_remove(1)
        assert e[ADDR] == 1
        assert 1 not in b and len(b) == 0

    def test_lookup_remove_missing(self):
        assert BounceBackBuffer(2).lookup_remove(9) is None

    def test_contains(self):
        b = BounceBackBuffer(2)
        b.insert(make_entry(7))
        assert 7 in b and 8 not in b


class TestPrefetched:
    def test_count(self):
        b = BounceBackBuffer(4)
        b.insert(make_entry(1, prefetched=True))
        b.insert(make_entry(2))
        b.insert(make_entry(3, prefetched=True))
        assert b.prefetched_count() == 2

    def test_evict_lru_prefetched(self):
        b = BounceBackBuffer(4)
        b.insert(make_entry(1, prefetched=True))
        b.insert(make_entry(2))
        b.insert(make_entry(3, prefetched=True))
        dropped = b.evict_lru_prefetched(0)
        assert dropped[ADDR] == 1  # the older prefetched entry
        assert b.prefetched_count() == 1
        assert 2 in b

    def test_evict_lru_prefetched_none(self):
        b = BounceBackBuffer(2)
        b.insert(make_entry(1))
        assert b.evict_lru_prefetched(0) is None


class TestReset:
    def test_reset(self):
        b = BounceBackBuffer(2)
        b.insert(make_entry(1))
        b.reset()
        assert len(b) == 0 and 1 not in b
