"""Tests for loop transformations (interchange, strip-mining)."""

import pytest

from repro.compiler import (
    Array,
    ArrayRef,
    Loop,
    Program,
    analyze_nest,
    generate_trace,
    interchange,
    nest,
    strip_mine,
    var,
)
from repro.errors import CompilerError
from repro.memtrace import UNIT_GAPS

i, j = var("i"), var("j")


def arrays_of(*arrays):
    return {a.name: a for a in arrays}


class TestAffineSubstitute:
    def test_substitute(self):
        from repro.compiler import Affine

        e = var("i") * 3 + var("j") + 5
        out = e.substitute("i", var("io") * 4 + var("ii"))
        assert out.coefficient("io") == 12
        assert out.coefficient("ii") == 3
        assert out.coefficient("j") == 1
        assert out.const == 5
        assert out.coefficient("i") == 0

    def test_substitute_absent_variable_is_identity(self):
        e = var("i") + 1
        assert e.substitute("z", var("q")) is e


class TestInterchange:
    def _sweep(self, has_write=False):
        body = [ArrayRef("G", (i, j), is_write=has_write)]
        return nest([Loop("i", 0, 8), Loop("j", 0, 8)], body, name="sweep")

    def test_reorders_loops(self):
        a = arrays_of(Array("G", (8, 8)))
        out = interchange(self._sweep(), ["j", "i"], a)
        assert [l.index for l in out.loops] == ["j", "i"]

    def test_recovers_spatial_tag(self):
        a = arrays_of(Array("G", (8, 8)))
        before = analyze_nest(self._sweep(), a).body[0]
        after = analyze_nest(interchange(self._sweep(), ["j", "i"], a), a)
        assert not before.spatial
        assert after.body[0].spatial

    def test_same_iteration_set(self):
        a = [Array("G", (8, 8))]
        original = Program("p", a, [self._sweep()])
        swapped = Program(
            "q", a, [interchange(self._sweep(), ["j", "i"], original.arrays)]
        )
        t1 = generate_trace(original, gap_distribution=UNIT_GAPS)
        t2 = generate_trace(swapped, gap_distribution=UNIT_GAPS)
        assert sorted(t1.addresses.tolist()) == sorted(t2.addresses.tolist())

    def test_bad_permutation_rejected(self):
        a = arrays_of(Array("G", (8, 8)))
        with pytest.raises(CompilerError):
            interchange(self._sweep(), ["i", "k"], a)

    def test_write_only_sweep_is_legal(self):
        # A single write with no other reference to the array carries no
        # dependence.
        a = arrays_of(Array("G", (8, 8)))
        out = interchange(self._sweep(has_write=True), ["j", "i"], a)
        assert [l.index for l in out.loops] == ["j", "i"]

    def test_carried_write_dependence_rejected(self):
        # X(j) = X(j-1): loop-carried flow dependence.
        a = arrays_of(Array("X", (16,)))
        recurrence = nest(
            [Loop("i", 0, 4), Loop("j", 1, 8)],
            [ArrayRef("X", (j - 1,)), ArrayRef("X", (j,), is_write=True)],
        )
        with pytest.raises(CompilerError):
            interchange(recurrence, ["j", "i"], a)

    def test_non_uniform_write_pair_rejected(self):
        a = arrays_of(Array("G", (8, 8)))
        transpose = nest(
            [Loop("i", 0, 8), Loop("j", 0, 8)],
            [ArrayRef("G", (i, j)), ArrayRef("G", (j, i), is_write=True)],
        )
        with pytest.raises(CompilerError):
            interchange(transpose, ["j", "i"], a)

    def test_indirect_write_rejected(self):
        a = arrays_of(Array("X", (8,)))
        gather = nest(
            [Loop("i", 0, 4), Loop("j", 0, 8)],
            [ArrayRef("X", (j,), indirect=tuple(range(8)), is_write=True)],
        )
        with pytest.raises(CompilerError):
            interchange(gather, ["j", "i"], a)

    def test_pre_post_rejected(self):
        a = arrays_of(Array("G", (8, 8)), Array("Y", (8,)))
        with_pre = nest(
            [Loop("i", 0, 8), Loop("j", 0, 8)],
            [ArrayRef("G", (j, i))],
            pre=[ArrayRef("Y", (i,))],
        )
        with pytest.raises(CompilerError):
            interchange(with_pre, ["j", "i"], a)

    def test_identity_permutation_always_allowed(self):
        # Even with a carried dependence, not moving anything is legal.
        a = arrays_of(Array("X", (16,)))
        recurrence = nest(
            [Loop("i", 0, 4), Loop("j", 1, 8)],
            [ArrayRef("X", (j - 1,)), ArrayRef("X", (j,), is_write=True)],
        )
        out = interchange(recurrence, ["i", "j"], a)
        assert [l.index for l in out.loops] == ["i", "j"]


class TestStripMine:
    def _mv(self):
        return nest(
            [Loop("j1", 0, 4), Loop("j2", 0, 12)],
            body=[ArrayRef("A", (var("j2"), var("j1")))],
            pre=[ArrayRef("Y", (var("j1"),))],
            post=[ArrayRef("Y", (var("j1"),), is_write=True)],
            name="mv",
        )

    def _arrays(self):
        return arrays_of(Array("A", (12, 4)), Array("Y", (4,)))

    def test_loop_structure(self):
        out = strip_mine(self._mv(), "j2", 4, self._arrays())
        assert [l.index for l in out.loops] == ["j1", "j2_blk", "j2"]
        assert out.loops[1].trip_count == 3
        assert out.loops[2].trip_count == 4

    def test_body_stream_preserved(self):
        # Without pre/post, strip-mining preserves the exact order.
        loop = nest(
            [Loop("j1", 0, 4), Loop("j2", 0, 12)],
            body=[ArrayRef("A", (var("j2"), var("j1")))],
            name="body-only",
        )
        a = [Array("A", (12, 4))]
        original = Program("p", a, [loop])
        mined = Program(
            "q", a, [strip_mine(loop, "j2", 4, original.arrays)]
        )
        t1 = generate_trace(original, gap_distribution=UNIT_GAPS)
        t2 = generate_trace(mined, gap_distribution=UNIT_GAPS)
        assert t1.addresses.tolist() == t2.addresses.tolist()

    def test_pre_post_replicated_per_block(self):
        # Mining the innermost loop re-executes the accumulator refs once
        # per block (the blocking semantics).
        a = [Array("A", (12, 4)), Array("Y", (4,))]
        original = Program("p", a, [self._mv()])
        mined_nest = strip_mine(self._mv(), "j2", 4, original.arrays)
        assert mined_nest.references == (
            self._mv().references + 4 * 2 * 2  # extra Y pairs: 2 more
        )                                      # blocks per j1, 4 rows
        mined = Program("q", a, [mined_nest])
        t1 = generate_trace(original, gap_distribution=UNIT_GAPS)
        t2 = generate_trace(mined, gap_distribution=UNIT_GAPS)
        # The body subsequence (references into A) is untouched.
        y_base = original.layout()["Y"]
        body1 = [x for x in t1.addresses.tolist() if x < y_base]
        body2 = [x for x in t2.addresses.tolist() if x < y_base]
        assert body1 == body2

    def test_nonzero_lower_bound(self):
        shifted = nest(
            [Loop("j", 2, 10)], [ArrayRef("X", (var("j"),))]
        )
        a = arrays_of(Array("X", (10,)))
        out = strip_mine(shifted, "j", 4, a)
        p1 = Program("p", [Array("X", (10,))], [shifted])
        p2 = Program("q", [Array("X", (10,))], [out])
        t1 = generate_trace(p1, gap_distribution=UNIT_GAPS)
        t2 = generate_trace(p2, gap_distribution=UNIT_GAPS)
        assert t1.addresses.tolist() == t2.addresses.tolist()

    def test_block_must_tile(self):
        with pytest.raises(CompilerError):
            strip_mine(self._mv(), "j2", 5, self._arrays())

    def test_unknown_loop_rejected(self):
        with pytest.raises(CompilerError):
            strip_mine(self._mv(), "zz", 4, self._arrays())

    def test_name_collision_rejected(self):
        colliding = nest(
            [Loop("j_blk", 0, 2), Loop("j", 0, 8)],
            [ArrayRef("X", (var("j"),))],
        )
        a = arrays_of(Array("X", (8,)))
        with pytest.raises(CompilerError):
            strip_mine(colliding, "j", 4, a)

    def test_tags_preserved_semantically(self):
        # X(j2) is temporal (invariant in j1) before and after mining.
        loop = nest(
            [Loop("j1", 0, 4), Loop("j2", 0, 12)],
            [ArrayRef("X", (var("j2"),))],
        )
        a = arrays_of(Array("X", (12,)))
        mined = strip_mine(loop, "j2", 4, a)
        tags = analyze_nest(mined, a)
        assert tags.body[0].temporal and tags.body[0].spatial
