"""Tests for the write-policy variants of the standard cache."""

import pytest

from repro.errors import ConfigError
from repro.sim import CacheGeometry, MemoryTiming, StandardCache, simulate

from conftest import make_trace

TIMING = MemoryTiming(latency=10, bus_bytes_per_cycle=16)
PENALTY = 12


def make_cache(policy="write-back", allocate=True):
    return StandardCache(
        CacheGeometry(128, 32, 1), TIMING,
        write_policy=policy, write_allocate=allocate,
    )


class TestValidation:
    def test_unknown_policy(self):
        with pytest.raises(ConfigError):
            make_cache(policy="write-sideways")


class TestWriteBack:
    def test_default_is_write_back(self):
        assert make_cache().write_policy == "write-back"

    def test_dirty_line_written_back_once(self):
        c = make_cache()
        c.access(0, True, temporal=False, spatial=False, now=0)
        c.access(0, True, temporal=False, spatial=False, now=100)   # second write: still 1 WB
        c.access(128, False, temporal=False, spatial=False, now=200)
        assert c.stats.writebacks == 1


class TestWriteThrough:
    def test_write_hit_drains_to_memory(self):
        c = make_cache(policy="write-through")
        c.access(0, False, temporal=False, spatial=False, now=0)      # fill
        c.access(0, True, temporal=False, spatial=False, now=100)     # write hit
        assert c.stats.writebacks == 1
        # Line stays clean: eviction writes nothing further.
        c.access(128, False, temporal=False, spatial=False, now=200)
        assert c.stats.writebacks == 1

    def test_write_miss_with_allocate(self):
        c = make_cache(policy="write-through", allocate=True)
        c.access(0, True, temporal=False, spatial=False, now=0)
        assert c.stats.misses == 1
        assert c.stats.writebacks == 1
        assert c.contains(0)  # allocated (clean)

    def test_write_miss_without_allocate(self):
        c = make_cache(policy="write-through", allocate=False)
        cycles = c.access(0, True, temporal=False, spatial=False, now=0)
        assert c.stats.misses == 1
        assert not c.contains(0)
        assert c.stats.lines_fetched == 0
        assert cycles == 1  # absorbed by the write buffer

    def test_read_path_unchanged(self):
        c = make_cache(policy="write-through")
        assert c.access(0, False, temporal=False, spatial=False, now=0) == PENALTY
        assert c.access(8, False, temporal=False, spatial=False, now=100) == 1

    def test_every_store_counted(self):
        c = make_cache(policy="write-through")
        trace = make_trace(
            [0, 0, 0, 0], is_write=[True] * 4, gaps=[100] * 4
        )
        r = simulate(c, trace)
        assert r.writebacks == 4


class TestPolicyComparison:
    def test_write_back_coalesces_store_traffic(self):
        # Repeated stores to one line: write-back drains once,
        # write-through drains every time.
        addresses = [0] * 20 + [128]
        writes = [True] * 20 + [False]
        trace = make_trace(addresses, is_write=writes, gaps=[100] * 21)
        wb = simulate(make_cache("write-back"), trace)
        wt = simulate(make_cache("write-through"), trace)
        assert wb.writebacks == 1
        assert wt.writebacks == 20
        assert wb.misses == wt.misses
