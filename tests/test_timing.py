"""Tests for the memory timing model."""

import pytest

from repro.errors import ConfigError
from repro.sim import PAPER_TIMING, MemoryTiming


class TestDefaults:
    def test_paper_values(self):
        assert PAPER_TIMING.latency == 20
        assert PAPER_TIMING.bus_bytes_per_cycle == 16
        assert PAPER_TIMING.hit_time == 1
        assert PAPER_TIMING.assist_hit_time == 3
        assert PAPER_TIMING.swap_lock == 2
        assert PAPER_TIMING.dirty_transfer == 2


class TestValidation:
    def test_negative_latency(self):
        with pytest.raises(ConfigError):
            MemoryTiming(latency=-1)

    def test_zero_bus(self):
        with pytest.raises(ConfigError):
            MemoryTiming(bus_bytes_per_cycle=0)

    def test_zero_hit_time(self):
        with pytest.raises(ConfigError):
            MemoryTiming(hit_time=0)

    def test_assist_slower_than_main(self):
        with pytest.raises(ConfigError):
            MemoryTiming(hit_time=3, assist_hit_time=2)

    def test_negative_write_buffer(self):
        with pytest.raises(ConfigError):
            MemoryTiming(write_buffer_entries=-1)


class TestTransfers:
    def test_transfer_rounds_up(self):
        t = MemoryTiming(bus_bytes_per_cycle=16)
        assert t.transfer_cycles(32) == 2
        assert t.transfer_cycles(33) == 3
        assert t.transfer_cycles(8) == 1
        assert t.transfer_cycles(0) == 0

    def test_negative_transfer_rejected(self):
        with pytest.raises(ConfigError):
            PAPER_TIMING.transfer_cycles(-1)

    def test_miss_penalty_paper_formula(self):
        # t_lat + n * LS / w_b: 32-byte line on a 16 B/cycle bus.
        assert PAPER_TIMING.miss_penalty(1, 32) == 22
        assert PAPER_TIMING.miss_penalty(2, 32) == 24
        # Loading a 256-byte virtual line costs 14 cycles more than a
        # 32-byte physical line (the paper's example).
        assert PAPER_TIMING.miss_penalty(8, 32) - PAPER_TIMING.miss_penalty(1, 32) == 14

    def test_virtual_equals_large_physical(self):
        # n physical lines of LS = one physical line of n*LS.
        assert PAPER_TIMING.miss_penalty(4, 32) == PAPER_TIMING.miss_penalty(1, 128)

    def test_zero_lines_rejected(self):
        with pytest.raises(ConfigError):
            PAPER_TIMING.miss_penalty(0, 32)

    def test_word_fetch(self):
        assert PAPER_TIMING.word_fetch_penalty() == 21
