"""Unit tests for trace containers."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.memtrace import Trace, TraceBuilder, TraceEntry, WORD_SIZE

from conftest import make_trace


class TestTraceEntry:
    def test_defaults(self):
        e = TraceEntry(64)
        assert not e.is_write and not e.temporal and not e.spatial
        assert e.gap == 1

    def test_negative_address_rejected(self):
        with pytest.raises(TraceError):
            TraceEntry(-1)

    def test_negative_gap_rejected(self):
        with pytest.raises(TraceError):
            TraceEntry(0, gap=-2)


class TestTrace:
    def test_len_and_getitem(self):
        t = make_trace([0, 8, 16], is_write=[False, True, False])
        assert len(t) == 3
        assert t[1].is_write
        assert t[2].address == 16

    def test_iteration_yields_entries(self):
        t = make_trace([0, 8])
        entries = list(t)
        assert all(isinstance(e, TraceEntry) for e in entries)
        assert [e.address for e in entries] == [0, 8]

    def test_columns_are_plain_lists(self):
        t = make_trace([0, 8])
        addr, w, temporal, spatial, gaps = t.columns()
        assert isinstance(addr, list) and isinstance(addr[0], int)

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(TraceError):
            Trace(
                np.array([0, 8]),
                np.array([False]),
                np.array([False, False]),
                np.array([False, False]),
                np.array([1, 1]),
            )

    def test_ref_ids_length_checked(self):
        with pytest.raises(TraceError):
            make_trace([0, 8], ref_ids=[1])

    def test_negative_address_rejected(self):
        with pytest.raises(TraceError):
            make_trace([-8])

    def test_negative_gap_rejected(self):
        with pytest.raises(TraceError):
            make_trace([0], gaps=[-1])

    def test_empty_trace_ok(self):
        t = make_trace([])
        assert len(t) == 0


class TestTagClearing:
    def test_clear_both(self):
        t = make_trace([0, 8], temporal=[True, True], spatial=[True, False])
        cleared = t.with_tags_cleared()
        assert not cleared.temporal.any() and not cleared.spatial.any()

    def test_clear_temporal_only(self):
        t = make_trace([0], temporal=[True], spatial=[True])
        cleared = t.with_tags_cleared(temporal=True, spatial=False)
        assert not cleared.temporal.any()
        assert cleared.spatial.all()

    def test_original_unchanged(self):
        t = make_trace([0], temporal=[True])
        t.with_tags_cleared()
        assert t.temporal.all()

    def test_ref_ids_preserved(self):
        t = make_trace([0, 8], ref_ids=[3, 4])
        assert t.with_tags_cleared().ref_ids.tolist() == [3, 4]


class TestConcat:
    def test_basic(self):
        a = make_trace([0], name="a")
        b = make_trace([8], name="b")
        c = a.concat(b)
        assert len(c) == 2
        assert c.name == "a+b"

    def test_ref_ids_shifted(self):
        a = make_trace([0, 8], ref_ids=[0, 1])
        b = make_trace([16], ref_ids=[0])
        c = a.concat(b)
        assert c.ref_ids.tolist() == [0, 1, 2]

    def test_missing_ref_ids_dropped(self):
        a = make_trace([0], ref_ids=[0])
        b = Trace(
            np.array([8]), np.array([False]), np.array([False]),
            np.array([False]), np.array([1]),
        )
        assert a.concat(b).ref_ids is None


class TestFromEntries:
    def test_roundtrip(self):
        entries = [TraceEntry(0, True, False, True, 2), TraceEntry(8)]
        t = Trace.from_entries(entries, name="rt")
        assert len(t) == 2
        assert t[0].is_write and t[0].spatial and t[0].gap == 2


class TestTraceBuilder:
    def test_append_single(self):
        b = TraceBuilder("x")
        b.append(0, is_write=True, gap=3, ref_id=7)
        t = b.freeze()
        assert len(t) == 1
        assert t[0].is_write and t[0].gap == 3
        assert t.ref_ids.tolist() == [7]

    def test_append_block(self):
        b = TraceBuilder()
        b.append_block(
            np.array([0, 8]), np.array([False, True]),
            np.array([True, False]), np.array([False, False]),
            np.array([1, 1]),
        )
        assert len(b) == 2
        t = b.freeze()
        assert t.temporal.tolist() == [True, False]

    def test_block_length_mismatch_rejected(self):
        b = TraceBuilder()
        with pytest.raises(TraceError):
            b.append_block(
                np.array([0, 8]), np.array([False]),
                np.array([False, False]), np.array([False, False]),
                np.array([1, 1]),
            )

    def test_empty_freeze(self):
        t = TraceBuilder("empty").freeze()
        assert len(t) == 0
        assert t.name == "empty"

    def test_word_size_constant(self):
        assert WORD_SIZE == 8
