"""Tests for the per-instruction vector-length analysis (figure 1b)."""

import pytest

from repro.errors import TraceError
from repro.memtrace.vectors import (
    MAX_IDLE_REFS,
    MAX_STRIDE_BYTES,
    VECTOR_BUCKETS,
    bucket_of,
    vector_lengths,
    vector_profile,
)

from conftest import make_trace


class TestVectorLengths:
    def test_requires_ref_ids(self):
        with pytest.raises(TraceError):
            vector_lengths(make_trace([0, 8]))

    def test_single_stream(self):
        t = make_trace([0, 8, 16, 24], ref_ids=[1, 1, 1, 1])
        assert vector_lengths(t) == [(25, 4)]

    def test_interleaved_streams(self):
        t = make_trace([0, 1000, 8, 1008], ref_ids=[1, 2, 1, 2])
        lengths = sorted(vector_lengths(t))
        assert lengths == [(9, 2), (9, 2)]

    def test_stride_termination(self):
        stride = MAX_STRIDE_BYTES + 8
        t = make_trace([0, stride], ref_ids=[1, 1])
        # The big jump terminates the first sequence and starts another.
        assert sorted(vector_lengths(t)) == [(1, 1), (1, 1)]

    def test_stride_at_limit_continues(self):
        t = make_trace([0, MAX_STRIDE_BYTES], ref_ids=[1, 1])
        assert vector_lengths(t) == [(MAX_STRIDE_BYTES + 1, 2)]

    def test_idle_termination(self):
        n_idle = MAX_IDLE_REFS + 1
        addresses = [0] + [10_000 + 8 * k for k in range(n_idle)] + [8]
        ref_ids = [1] + [2] * n_idle + [1]
        t = make_trace(addresses, ref_ids=ref_ids)
        ones = [s for s in vector_lengths(t) if s[1] in (1,)]
        # Instruction 1's two accesses are split by the idle gap.
        assert len(ones) == 2

    def test_descending_stream(self):
        t = make_trace([24, 16, 8], ref_ids=[1, 1, 1])
        assert vector_lengths(t) == [(17, 3)]

    def test_repeated_same_address(self):
        t = make_trace([64, 64, 64], ref_ids=[1, 1, 1])
        assert vector_lengths(t) == [(1, 3)]


class TestBuckets:
    def test_labels(self):
        assert bucket_of(32) == "<= 32 B"
        assert bucket_of(33) == "32 - 64 B"
        assert bucket_of(64) == "32 - 64 B"
        assert bucket_of(100) == "64 - 128 B"
        assert bucket_of(256) == "128 - 256 B"
        assert bucket_of(512) == "256 - 512 B"
        assert bucket_of(513) == "> 512 B"

    def test_bucket_count(self):
        assert len(VECTOR_BUCKETS) == 6


class TestProfile:
    def test_reference_weighted(self):
        # One 4-ref stream spanning 25 B, one isolated ref: 80% of
        # references live in the short-vector bucket.
        t = make_trace([0, 8, 16, 24, 10_000], ref_ids=[1, 1, 1, 1, 2])
        p = vector_profile(t)
        assert p.fraction("<= 32 B") == 1.0  # both sequences are <= 32 B
        assert p.total_refs == 5

    def test_long_vector_fraction(self):
        addresses = [8 * k for k in range(100)]  # 793-byte stream
        t = make_trace(addresses, ref_ids=[1] * 100)
        p = vector_profile(t)
        assert p.fraction("> 512 B") == 1.0
        assert p.fraction_longer_than(32) == 1.0

    def test_fractions_sum_to_one(self):
        t = make_trace([0, 8, 16, 400, 9000], ref_ids=[1, 1, 1, 2, 3])
        p = vector_profile(t)
        assert abs(sum(p.fractions.values()) - 1.0) < 1e-9

    def test_mean_length_weighted_by_refs(self):
        t = make_trace([0, 8, 10_000], ref_ids=[1, 1, 2])
        p = vector_profile(t)
        assert p.mean_length == pytest.approx((9 * 2 + 1 * 1) / 3)

    def test_empty_trace(self):
        p = vector_profile(make_trace([], ref_ids=[]))
        assert p.total_refs == 0
