"""Tests for the Belady (OPT) replacement bound."""

import pytest

from repro.sim import CacheGeometry, MemoryTiming, StandardCache, simulate
from repro.sim.belady import simulate_belady

from conftest import make_trace

TIMING = MemoryTiming(latency=10, bus_bytes_per_cycle=16)
GEOMETRY = CacheGeometry(128, 32, 1)  # 4 sets
FA = CacheGeometry(128, 32, 4)  # fully associative, 4 lines


def belady(trace, geometry=GEOMETRY):
    return simulate_belady(trace, geometry, TIMING)


def lru(trace, geometry=GEOMETRY):
    return simulate(StandardCache(geometry, TIMING), trace)


class TestOptimality:
    def test_classic_lru_pathology(self):
        # Cyclic sweep over 5 lines through a 4-line fully associative
        # cache: LRU misses every time, OPT keeps 3 of them resident.
        addresses = [32 * k for k in range(5)] * 8
        trace = make_trace(addresses, gaps=[100] * len(addresses))
        assert belady(trace, FA).misses < lru(trace, FA).misses

    def test_never_more_misses_than_lru(self):
        import numpy as np

        rng = np.random.default_rng(7)
        addresses = (rng.integers(0, 40, size=400) * 8).tolist()
        trace = make_trace(addresses, gaps=[50] * 400)
        for geometry in (GEOMETRY, FA, CacheGeometry(256, 32, 2)):
            assert belady(trace, geometry).misses <= lru(trace, geometry).misses

    def test_equal_on_compulsory_only(self):
        addresses = [32 * k for k in range(10)]
        trace = make_trace(addresses, gaps=[100] * 10)
        assert belady(trace).misses == lru(trace).misses == 10

    def test_hit_behaviour(self):
        trace = make_trace([0, 0, 0], gaps=[100] * 3)
        r = belady(trace)
        assert r.misses == 1 and r.hits_main == 2
        assert r.amat == pytest.approx((12 + 1 + 1) / 3)


class TestAccounting:
    def test_conservation_and_traffic(self):
        trace = make_trace([0, 128, 0, 256, 0], gaps=[100] * 5)
        r = belady(trace)
        assert r.refs == r.hits_main + r.misses
        assert r.words_fetched == 4 * r.lines_fetched

    def test_writebacks(self):
        # Dirty line evicted by OPT must be written back.
        trace = make_trace(
            [0, 128, 256, 384, 512],
            is_write=[True, False, False, False, False],
            gaps=[100] * 5,
        )
        r = belady(trace)
        assert r.writebacks >= 1

    def test_empty_trace(self):
        r = belady(make_trace([]))
        assert r.refs == 0 and r.cycles == 0

    def test_deterministic(self):
        trace = make_trace([0, 128, 0, 256, 128, 0], gaps=[40] * 6)
        assert belady(trace).cycles == belady(trace).cycles
