"""Tests for the command-line interface."""

import pytest

from repro.cli import CONFIGS, main
from repro.core.spec import CacheSpec


class TestFigures:
    def test_lists_everything(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "fig1a" in out and "fig12" in out
        assert "related-work" in out


class TestRun:
    def test_single_figure(self, capsys):
        assert main(["run", "fig4b", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "fig4b" in out and "model" in out

    def test_unknown_figure(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_multiple_figures(self, capsys):
        assert main(["run", "fig4a", "fig4b", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "fig4a" in out and "fig4b" in out

    def test_jobs_flag_matches_serial(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert main(["run", "fig6a", "--scale", "tiny", "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["run", "fig6a", "--scale", "tiny", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel


class TestSimulate:
    def test_single_config(self, capsys):
        assert main(
            ["simulate", "--benchmark", "MV", "--config", "soft",
             "--scale", "tiny"]
        ) == 0
        out = capsys.readouterr().out
        assert "AMAT" in out and "soft" in out

    def test_all_configs(self, capsys):
        assert main(
            ["simulate", "--benchmark", "LIV", "--scale", "tiny"]
        ) == 0
        out = capsys.readouterr().out
        for config in CONFIGS:
            assert config in out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--benchmark", "nope"])

    def test_jobs_flag_accepted(self, capsys):
        assert main(
            ["simulate", "--benchmark", "LIV", "--scale", "tiny",
             "--jobs", "2"]
        ) == 0
        assert "AMAT" in capsys.readouterr().out

    def test_configs_registry_is_specs(self):
        assert all(isinstance(s, CacheSpec) for s in CONFIGS.values())


class TestCacheCommand:
    def test_info_and_clear(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "results"))
        assert main(
            ["simulate", "--benchmark", "LIV", "--config", "soft",
             "--scale", "tiny"]
        ) == 0
        capsys.readouterr()
        assert main(["cache"]) == 0
        assert "1 entries" in capsys.readouterr().out
        assert main(["cache", "clear"]) == 0
        assert "removed 1" in capsys.readouterr().out


class TestTags:
    def test_shows_tags(self, capsys):
        assert main(["tags", "--benchmark", "MV", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "T=1" in out and "S=1" in out and "A(" in out

    def test_scalar_blocks_reported(self, capsys):
        assert main(["tags", "--benchmark", "MDG", "--scale", "tiny"]) == 0
        assert "scalar" in capsys.readouterr().out


class TestTrace:
    def test_saves_trace(self, tmp_path, capsys):
        out_path = tmp_path / "mv.npz"
        assert main(
            ["trace", "--benchmark", "MV", "--scale", "tiny",
             "--out", str(out_path)]
        ) == 0
        assert out_path.exists()
        from repro.memtrace import load_trace

        assert len(load_trace(out_path)) > 0


class TestBenchStream:
    def test_run_stream_bench_payload(self, tmp_path):
        from repro.harness.bench import run_stream_bench

        payload = run_stream_bench(
            refs=4000, chunk_refs=1000, repeat=1, workdir=str(tmp_path)
        )
        assert payload["refs"] == 4000
        assert payload["max_rss_kb"] > 0
        configs = [row["config"] for row in payload["results"]]
        assert configs == ["standard", "soft"]
        for row in payload["results"]:
            assert row["streamed_refs_per_sec"] > 0
            assert row["streamed_peak_bytes"] > 0
            assert row["in_memory_peak_bytes"] > 0
        # the benchmark work directory is cleaned up afterwards
        assert not list(tmp_path.glob("bench-stream-*"))

    def test_cli_stream_scenario_writes_payload(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_sim.json"
        assert main(
            ["bench", "--scenario", "stream", "--stream-refs", "3000",
             "--chunk-refs", "800", "--repeat", "1", "--out", str(out)]
        ) == 0
        text = capsys.readouterr().out
        assert "streaming vs in-memory" in text
        payload = json.loads(out.read_text())
        assert payload["stream"]["refs"] == 3000
        assert payload["stream"]["chunk_refs"] == 800


class TestAttribute:
    def test_prints_profile(self, capsys):
        assert main(
            ["attribute", "--benchmark", "MV", "--scale", "tiny",
             "--top", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "ref_id=" in out and "cover 90%" in out


class TestErrorCodes:
    """CLI failures carry the stable machine-readable error code."""

    def test_config_error_code_on_engine_refusal(self, capsys):
        assert main(
            ["simulate", "--benchmark", "MV", "--config", "soft",
             "--scale", "tiny", "--engine", "native"]
        ) == 1
        err = capsys.readouterr().err
        assert err.startswith("error [config-error]:")
        assert "native-assisted" in err

    def test_trace_error_code_on_missing_file(self, capsys):
        assert main(["simulate", "--trace", "/no/such/trace"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error [trace-error]:")


class TestServeCLI:
    def test_smoke_flag_runs_end_to_end(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["serve", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "serve smoke OK" in out

    def test_no_cache_conflicts_with_cache_dir(self, capsys, tmp_path):
        assert main(
            ["serve", "--no-cache", "--cache-dir", str(tmp_path)]
        ) == 2
        assert "--no-cache" in capsys.readouterr().err


class TestBenchServe:
    def test_serve_scenario_writes_own_payload(self, tmp_path, capsys):
        import json

        serve_out = tmp_path / "BENCH_serve.json"
        sim_out = tmp_path / "BENCH_sim.json"
        assert main(
            ["bench", "--scenario", "serve",
             "--serve-requests", "80", "--serve-concurrency", "2",
             "--serve-out", str(serve_out), "--out", str(sim_out)]
        ) == 0
        text = capsys.readouterr().out
        assert "serve closed-loop" in text
        payload = json.loads(serve_out.read_text())["serve"]
        assert payload["completed"] == payload["requests"] == 80
        assert payload["cpus"] >= 1
        assert payload["concurrency"] == 2
        assert 0.0 <= payload["hit_ratio_observed"] <= 1.0
        assert payload["client_failures"] == []
        assert payload["server_errors"] == 0
        # serve is its own artifact: BENCH_sim.json must not be
        # clobbered with an empty payload.
        assert not sim_out.exists()

    def test_serve_guard_enforces_floors(self, tmp_path):
        from repro.harness.bench import serve_bench_guard

        payload = {
            "requests": 10, "completed": 10,
            "server_errors": 0, "warm_cells": 4, "client_failures": [],
            "served": {"hot": 9, "disk": 0, "simulated": 1, "coalesced": 0},
            "simulations": 5, "hit_rps": 50.0, "hit_p99_ms": 100.0,
        }
        assert serve_bench_guard(dict(payload), None, None) == []
        problems = serve_bench_guard(dict(payload), 500.0, 1.0)
        assert len(problems) == 2  # throughput floor + latency ceiling
        relaxed = dict(payload, insufficient_cpus=True)
        assert serve_bench_guard(relaxed, 500.0, 1.0) == []

    def test_serve_guard_catches_dedup_violations(self):
        from repro.harness.bench import serve_bench_guard

        payload = {
            "requests": 10, "completed": 10,
            "server_errors": 0, "warm_cells": 4, "client_failures": [],
            "served": {"hot": 8, "disk": 0, "simulated": 1, "coalesced": 0},
            "simulations": 9,  # re-simulated cached cells
        }
        problems = serve_bench_guard(payload, None, None)
        assert any("simulat" in p for p in problems)
