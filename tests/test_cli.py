"""Tests for the command-line interface."""

import pytest

from repro.cli import CONFIGS, main


class TestFigures:
    def test_lists_everything(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "fig1a" in out and "fig12" in out
        assert "related-work" in out


class TestRun:
    def test_single_figure(self, capsys):
        assert main(["run", "fig4b", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "fig4b" in out and "model" in out

    def test_unknown_figure(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_multiple_figures(self, capsys):
        assert main(["run", "fig4a", "fig4b", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "fig4a" in out and "fig4b" in out


class TestSimulate:
    def test_single_config(self, capsys):
        assert main(
            ["simulate", "--benchmark", "MV", "--config", "soft",
             "--scale", "tiny"]
        ) == 0
        out = capsys.readouterr().out
        assert "AMAT" in out and "soft" in out

    def test_all_configs(self, capsys):
        assert main(
            ["simulate", "--benchmark", "LIV", "--scale", "tiny"]
        ) == 0
        out = capsys.readouterr().out
        for config in CONFIGS:
            assert config in out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--benchmark", "nope"])


class TestTags:
    def test_shows_tags(self, capsys):
        assert main(["tags", "--benchmark", "MV", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "T=1" in out and "S=1" in out and "A(" in out

    def test_scalar_blocks_reported(self, capsys):
        assert main(["tags", "--benchmark", "MDG", "--scale", "tiny"]) == 0
        assert "scalar" in capsys.readouterr().out


class TestTrace:
    def test_saves_trace(self, tmp_path, capsys):
        out_path = tmp_path / "mv.npz"
        assert main(
            ["trace", "--benchmark", "MV", "--scale", "tiny",
             "--out", str(out_path)]
        ) == 0
        assert out_path.exists()
        from repro.memtrace import load_trace

        assert len(load_trace(out_path)) > 0


class TestAttribute:
    def test_prints_profile(self, capsys):
        assert main(
            ["attribute", "--benchmark", "MV", "--scale", "tiny",
             "--top", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "ref_id=" in out and "cover 90%" in out
