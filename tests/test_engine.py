"""Engine-ladder selection and fast/reference parity.

The fast engine's contract is *exactness*: for every configuration it
accepts, every counter (and the final model state) must be identical to
the reference per-reference loop.  These tests check the contract on
randomized traces, and that ``auto`` refuses every configuration whose
equivalence the models cannot prove.
"""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SoftCacheConfig, SoftwareAssistedCache
from repro.core.spec import CacheSpec
from repro.errors import ConfigError
from repro.experiments.common import ExperimentSpec
from repro.harness.parallel import ResultCache, run_cells
from repro.sim import (
    CacheGeometry,
    EngineMismatchError,
    MemoryTiming,
    StandardCache,
    TwoLevelCache,
    cross_validate,
    resolve_engine,
    select_engine,
    simulate,
)
from repro.sim.engine import PARITY_FIELDS, fast_refusal, native_refusal

from conftest import make_trace

TIMING = MemoryTiming(latency=10, bus_bytes_per_cycle=16)


def random_trace(seed, refs=4000, lines=256, write_ratio=0.3):
    """A randomized tagged reference stream with mixed gaps."""
    rng = np.random.default_rng(seed)
    return make_trace(
        (rng.integers(0, lines * 4, refs) * 8).tolist(),
        is_write=(rng.random(refs) < write_ratio).tolist(),
        temporal=(rng.random(refs) < 0.25).tolist(),
        spatial=(rng.random(refs) < 0.25).tolist(),
        gaps=rng.integers(0, 5, refs).tolist(),
        name=f"rand{seed}",
    )


def plain_soft(ways=1, **overrides):
    """A software-assisted cache with every assist mechanism off."""
    config = dict(
        size_bytes=1024, line_size=32, ways=ways,
        bounce_back_lines=0, virtual_line_size=None, timing=TIMING,
    )
    config.update(overrides)
    return SoftwareAssistedCache(SoftCacheConfig(**config))


def standard(ways=1, **kwargs):
    return StandardCache(
        CacheGeometry(size_bytes=1024, line_size=32, ways=ways),
        TIMING, **kwargs,
    )


def assert_counters_equal(a, b, context=""):
    diffs = {
        name: (getattr(a, name), getattr(b, name))
        for name in PARITY_FIELDS
        if getattr(a, name) != getattr(b, name)
    }
    assert not diffs, f"{context}: {diffs}"


class TestParityRandomized:
    """Property-style parity: randomized traces, every counter equal."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("ways", [1, 2])
    def test_standard_cache(self, seed, ways):
        trace = random_trace(seed)
        reference = simulate(standard(ways), trace, engine="reference")
        fast = simulate(standard(ways), trace, engine="fast")
        assert_counters_equal(reference, fast, f"standard ways={ways}")

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("ways", [1, 2])
    def test_soft_cache(self, seed, ways):
        trace = random_trace(seed)
        reference = simulate(plain_soft(ways), trace, engine="reference")
        fast = simulate(plain_soft(ways), trace, engine="fast")
        assert_counters_equal(reference, fast, f"soft ways={ways}")

    @pytest.mark.parametrize("ways", [1, 2])
    def test_temporal_priority_replacement(self, ways):
        trace = random_trace(11)
        build = lambda: plain_soft(ways, temporal_priority=True)  # noqa: E731
        reference = simulate(build(), trace, engine="reference")
        fast = simulate(build(), trace, engine="fast")
        assert_counters_equal(reference, fast, "temporal-priority")

    def test_final_state_matches(self):
        """A fast run must leave the model as the reference run would."""
        trace = random_trace(5)
        for build in (standard, plain_soft):
            reference = build()
            simulate(reference, trace, engine="reference")
            fast = build()
            simulate(fast, trace, engine="fast")
            for address in range(0, 256 * 4 * 8, 32):
                assert reference.contains(address) == fast.contains(address)
            assert reference._ready_at == fast._ready_at
            assert reference.last_fetch == fast.last_fetch

    def test_temporal_bits_materialised(self):
        trace = random_trace(9)
        reference = plain_soft()
        simulate(reference, trace, engine="reference")
        fast = plain_soft()
        simulate(fast, trace, engine="fast")
        for address in range(0, 256 * 4 * 8, 32):
            assert reference.temporal_bit(address) == fast.temporal_bit(address)

    def test_unbuffered_write_buffer(self):
        """entries == 0: every push stalls for the full drain time."""
        timing = MemoryTiming(
            latency=10, bus_bytes_per_cycle=16, write_buffer_entries=0
        )
        trace = random_trace(3, write_ratio=0.7)
        result = cross_validate(
            lambda: StandardCache(
                CacheGeometry(size_bytes=256, line_size=32, ways=1), timing
            ),
            trace,
        )
        assert result.write_buffer_stalls > 0


short_streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=63).map(lambda k: k * 8),
        st.booleans(), st.booleans(), st.booleans(),
        st.integers(min_value=0, max_value=4),
    ),
    min_size=1,
    max_size=80,
)


class TestParityHypothesis:
    @settings(max_examples=150, deadline=None)
    @given(stream=short_streams, ways=st.sampled_from([1, 2]))
    def test_arbitrary_streams(self, stream, ways):
        trace = make_trace(
            [a for a, _, _, _, _ in stream],
            is_write=[w for _, w, _, _, _ in stream],
            temporal=[t for _, _, t, _, _ in stream],
            spatial=[s for _, _, _, s, _ in stream],
            gaps=[g for _, _, _, _, g in stream],
        )
        tiny = CacheGeometry(size_bytes=128, line_size=32, ways=ways)
        reference = simulate(
            StandardCache(tiny, TIMING), trace, engine="reference"
        )
        fast = simulate(StandardCache(tiny, TIMING), trace, engine="fast")
        assert_counters_equal(reference, fast, "hypothesis stream")


class TestSelection:
    def test_resolution_order(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine(None) == "auto"
        monkeypatch.setenv("REPRO_ENGINE", "reference")
        assert resolve_engine(None) == "reference"
        assert resolve_engine("fast") == "fast"  # explicit beats env

    def test_invalid_engine_rejected(self):
        with pytest.raises(ConfigError):
            resolve_engine("warp")

    def test_auto_picks_top_available_tier(self):
        """Plain write-back configs never fall to reference: native when
        the compiled kernels are loadable, else fast."""
        for build in (standard, plain_soft):
            expected = (
                "native" if native_refusal(build()) is None else "fast"
            )
            assert select_engine("auto", build())[0] == expected

    def test_engine_recorded_in_result(self):
        trace = random_trace(0)
        expected = (
            "native" if native_refusal(standard()) is None else "fast"
        )
        assert simulate(standard(), trace).engine == expected
        assert simulate(standard(), trace, engine="reference").engine == (
            "reference"
        )

    @pytest.mark.parametrize(
        "build,code",
        [
            (lambda: SoftwareAssistedCache(SoftCacheConfig(
                size_bytes=1024, line_size=32, ways=1, bounce_back_lines=4,
                virtual_line_size=None, prefetch="on-miss",
                timing=TIMING)), "prefetch"),
            (lambda: SoftwareAssistedCache(SoftCacheConfig(
                size_bytes=1024, line_size=32, ways=1, bounce_back_lines=4,
                virtual_line_size=64, prefetch="software",
                timing=TIMING)), "prefetch"),
            (lambda: standard(write_policy="write-through"), "write-policy"),
            (lambda: TwoLevelCache(
                standard(), CacheGeometry(8192, 32, 2), 12),
             "two-level-hierarchy"),
        ],
    )
    def test_auto_refuses_unsupported_configs(self, build, code):
        model = build()
        refusal = fast_refusal(model)
        assert refusal is not None and refusal.code == code
        chosen, why = select_engine("auto", model)
        assert chosen == "reference" and why == refusal
        with pytest.raises(ConfigError):
            select_engine("fast", model)

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(bounce_back_lines=4),
            dict(virtual_line_size=64),
            dict(bounce_back_lines=4, virtual_line_size=64),
            dict(bounce_back_lines=4, bounce_back_ways=2,
                 use_temporal=True),
        ],
    )
    def test_auto_accepts_assisted_configs(self, overrides):
        """The whole soft family runs on the batch kernels now —
        bounce-back, virtual lines and temporal bits no longer refuse
        (only prefetch still couples timing into behaviour)."""
        config = dict(size_bytes=1024, line_size=32, ways=1,
                      bounce_back_lines=0, virtual_line_size=None,
                      timing=TIMING)
        config.update(overrides)
        model = SoftwareAssistedCache(SoftCacheConfig(**config))
        assert fast_refusal(model) is None
        assert select_engine("auto", model)[0] == "fast"

    def test_auto_refuses_warm_continuations(self):
        model = standard()
        assert select_engine("auto", model, reset=False)[0] == "reference"
        assert select_engine("auto", model, warmup_refs=10)[0] == "reference"
        with pytest.raises(ConfigError):
            select_engine("fast", model, reset=False)

    def test_warm_continuation_after_fast_run(self):
        """auto falls back for reset=False, continuing from fast state."""
        trace = random_trace(2)
        warm = standard()
        simulate(warm, trace)  # auto -> fast
        follow_on = simulate(warm, trace, reset=False)
        assert follow_on.engine == "reference"
        cold = standard()
        simulate(cold, trace, engine="reference")
        follow_ref = simulate(cold, trace, reset=False)
        assert_counters_equal(follow_on, follow_ref, "warm continuation")


class TestCrossValidate:
    def test_passes_on_eligible_config(self):
        result = cross_validate(standard, random_trace(1))
        assert result.engine == "reference"
        fast = cross_validate(standard, random_trace(1), engine_result="fast")
        assert fast.engine == "fast"

    def test_rejects_config_without_fast_path(self):
        build = lambda: standard(write_policy="write-through")  # noqa: E731
        with pytest.raises(ConfigError):
            cross_validate(build, random_trace(1))

    def test_detects_mismatch(self, monkeypatch):
        import repro.sim.fast as fast_module

        true_fast = fast_module.simulate_fast

        def crooked(model, trace):
            result = true_fast(model, trace)
            result.cycles += 1
            return result

        monkeypatch.setattr(fast_module, "simulate_fast", crooked)
        with pytest.raises(EngineMismatchError, match="cycles"):
            cross_validate(standard, random_trace(1))


class TestCacheKeyEngine:
    """The result cache keys on the engine: results never alias."""

    def test_key_separates_engines(self):
        keys = {
            ResultCache.key("tfp", "sfp", engine): engine
            for engine in ("auto", "reference", "fast")
        }
        assert len(keys) == 3
        assert ResultCache.key("tfp", "sfp", "fast") == ResultCache.key(
            "tfp", "sfp", "fast"
        )

    def test_run_cells_engines_never_alias(self, tmp_path):
        trace = random_trace(0, refs=500)
        cells = [(trace, CacheSpec.of("standard_cache"))]
        store = ResultCache(tmp_path)
        run_cells(cells, cache=store, engine="fast")
        assert (store.hits, store.misses) == (0, 1)
        # Same cell, other engine: must simulate, not hit the fast entry.
        probe = ResultCache(tmp_path)
        [result] = run_cells(cells, cache=probe, engine="reference")
        assert (probe.hits, probe.misses) == (0, 1)
        assert result.engine == "reference"
        # And each engine hits its own entry on the rerun.
        rerun = ResultCache(tmp_path)
        [cached] = run_cells(cells, cache=rerun, engine="fast")
        assert rerun.hits == 1 and cached.engine == "fast"

    def test_legacy_payload_invalidates(self, tmp_path):
        """Pre-engine cache entries (no ``engine`` key) are misses."""
        trace = random_trace(0, refs=500)
        cells = [(trace, CacheSpec.of("standard_cache"))]
        store = ResultCache(tmp_path)
        run_cells(cells, cache=store, engine="reference")
        for entry in tmp_path.rglob("*.json"):
            payload = json.loads(entry.read_text())
            del payload["engine"]
            entry.write_text(json.dumps(payload))
        probe = ResultCache(tmp_path)
        [result] = run_cells(cells, cache=probe, engine="reference")
        assert (probe.hits, probe.misses) == (0, 1)
        assert result.refs == 500


class TestExperimentSpecEngine:
    def test_round_trip(self):
        spec = ExperimentSpec.create(
            "fig0", "t", configs={"s": CacheSpec.of("standard_cache")},
            engine="fast",
        )
        assert spec.engine == "fast"
        clone = ExperimentSpec.from_dict(spec.to_dict())
        assert clone.engine == "fast"

    def test_missing_key_defaults_to_auto(self):
        spec = ExperimentSpec.create(
            "fig0", "t", configs={"s": CacheSpec.of("standard_cache")}
        )
        payload = spec.to_dict()
        del payload["engine"]
        assert ExperimentSpec.from_dict(payload).engine == "auto"


class TestEngineCLI:
    def test_simulate_engine_flag(self, capsys):
        from repro.cli import main

        for engine in ("reference", "fast"):
            assert main(
                ["simulate", "--benchmark", "MV", "--scale", "tiny",
                 "--config", "standard", "--engine", engine]
            ) == 0
        out = capsys.readouterr().out
        assert "standard" in out

    def test_simulate_cross_validate(self, capsys):
        from repro.cli import main

        assert main(
            ["simulate", "--benchmark", "MV", "--scale", "tiny",
             "--cross-validate"]
        ) == 0
        assert "cross-validated" in capsys.readouterr().out

    def test_run_engine_flag_sets_env(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        try:
            assert main(
                ["run", "fig6a", "--scale", "tiny", "--engine", "reference"]
            ) == 0
            assert os.environ.get("REPRO_ENGINE") == "reference"
        finally:
            # main() set the variable itself, so monkeypatch has nothing
            # to restore — drop it or it leaks into later test modules.
            os.environ.pop("REPRO_ENGINE", None)

    def test_bench_writes_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "bench.json"
        assert main(
            ["bench", "--refs", "5000", "--repeat", "1",
             "--out", str(out)]
        ) == 0
        payload = json.loads(out.read_text())
        assert payload["refs"] == 5000
        assert {row["config"] for row in payload["results"]} >= {
            "standard", "soft"
        }
        assert "fast_speedup" in payload
        text = capsys.readouterr().out
        assert "Mrefs/s" in text


class TestColumnsListCache:
    def test_materialised_once(self):
        trace = random_trace(0, refs=64)
        first = trace.columns_list()
        assert trace.columns_list() is first
        # columns() still hands out fresh copies.
        assert trace.columns() is not trace.columns()

    def test_native_types(self):
        trace = random_trace(0, refs=8)
        addresses, is_write, temporal, spatial, gaps = trace.columns_list()
        assert type(addresses[0]) is int and type(is_write[0]) is bool
