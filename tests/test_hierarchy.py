"""Tests for the two-level hierarchy wrapper."""

import pytest

from repro.core import SoftCacheConfig, SoftwareAssistedCache
from repro.errors import ConfigError
from repro.sim import (
    CacheGeometry,
    MemoryTiming,
    StandardCache,
    TwoLevelCache,
    simulate,
)

from conftest import make_trace

L1_TIMING = MemoryTiming(latency=4, bus_bytes_per_cycle=16)
L1_PENALTY = 6   # 4 + 32/16: an L1 miss that hits the L2
EXTRA = 14       # additional cycles to reach memory


def make_hierarchy(l2_sets=8, l2_ways=2, l2_line=32):
    l1 = StandardCache(CacheGeometry(128, 32, 1), L1_TIMING)
    l2 = CacheGeometry(l2_sets * l2_ways * l2_line, l2_line, l2_ways)
    return TwoLevelCache(l1, l2, EXTRA)


def access(cache, address, now):
    return cache.access(address, False, temporal=False, spatial=False, now=now)


class TestValidation:
    def test_l1_must_expose_last_fetch(self):
        class Opaque:
            pass

        with pytest.raises(ConfigError):
            TwoLevelCache(Opaque(), CacheGeometry(1024, 32, 2), EXTRA)

    def test_l2_line_not_smaller(self):
        l1 = StandardCache(CacheGeometry(128, 32, 1), L1_TIMING)
        with pytest.raises(ConfigError):
            TwoLevelCache(l1, CacheGeometry(1024, 16, 2), EXTRA)

    def test_negative_extra(self):
        l1 = StandardCache(CacheGeometry(128, 32, 1), L1_TIMING)
        with pytest.raises(ConfigError):
            TwoLevelCache(l1, CacheGeometry(1024, 32, 2), -1)


class TestLatencies:
    def test_cold_miss_pays_memory(self):
        c = make_hierarchy()
        assert access(c, 0, now=0) == L1_PENALTY + EXTRA
        assert c.l2_stats.misses == 1

    def test_l1_hit_is_one_cycle(self):
        c = make_hierarchy()
        access(c, 0, now=0)
        assert access(c, 0, now=100) == 1
        assert c.l2_stats.refs == 1  # the hit never reached the L2

    def test_l2_hit_pays_only_l1_penalty(self):
        c = make_hierarchy()
        access(c, 0, now=0)       # into L1 and L2
        access(c, 128, now=100)   # evicts 0 from L1 (conflict)
        assert access(c, 0, now=200) == L1_PENALTY  # L2 still holds it
        assert c.l2_stats.hits_main == 1

    def test_wider_l2_line_covers_l1_neighbours(self):
        c = make_hierarchy(l2_line=64)
        access(c, 0, now=0)        # L2 line covers L1 lines 0 and 1
        cycles = access(c, 32, now=100)  # L1 miss, L2 hit
        assert cycles == L1_PENALTY

    def test_l2_capacity_eviction(self):
        c = make_hierarchy(l2_sets=1, l2_ways=2)
        access(c, 0, now=0)
        access(c, 32, now=100)
        access(c, 64, now=200)     # evicts L2 line 0
        assert not c.in_l2(0)
        access(c, 128, now=300)    # push 0 out of L1 as well
        assert access(c, 0, now=400) == L1_PENALTY + EXTRA


class TestWithSoftL1:
    def test_virtual_line_fetch_through_l2(self):
        l1 = SoftwareAssistedCache(
            SoftCacheConfig(
                size_bytes=128, line_size=32, bounce_back_lines=2,
                virtual_line_size=64, timing=L1_TIMING,
            )
        )
        c = TwoLevelCache(l1, CacheGeometry(1024, 32, 2), EXTRA)
        cycles = c.access(0, False, temporal=False, spatial=True, now=0)
        # Two lines fetched, both missing the L2: one extra latency.
        assert cycles == L1_TIMING.miss_penalty(2, 32) + EXTRA
        assert c.l2_stats.misses == 2
        # Re-fetch after L1 eviction: L2 hits, no memory trip.
        c.access(128, False, temporal=False, spatial=False, now=1000)
        c.access(160, False, temporal=False, spatial=False, now=2000)
        cycles = c.access(0, False, temporal=False, spatial=True, now=3000)
        assert cycles <= L1_TIMING.miss_penalty(2, 32) + 3


class TestDriverIntegration:
    def test_simulate(self):
        trace = make_trace([0, 0, 128, 0], gaps=[100] * 4)
        r = simulate(make_hierarchy(), trace)
        assert r.refs == 4
        assert r.cycles == (L1_PENALTY + EXTRA) + 1 + (L1_PENALTY + EXTRA) + L1_PENALTY

    def test_reset(self):
        c = make_hierarchy()
        access(c, 0, now=0)
        c.reset()
        assert c.l2_stats.refs == 0
        assert access(c, 0, now=0) == L1_PENALTY + EXTRA
