"""TraceStream and out-of-core simulation parity.

The streaming subsystem's contract mirrors the fast engine's: chunked
simulation must be *exact* — every counter and the final model state
identical to materialising the trace and running the monolithic path —
for every model, on both engines, at any chunk size.  These tests check
that contract on randomized traces (including chunk sizes of 1, which
put every reference on a chunk boundary) and on the assist mechanisms
whose state is hardest to carry: virtual-line fetches straddling chunk
boundaries, bounce-back swaps, write-buffer drains.
"""

import copy
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SoftCacheConfig, SoftwareAssistedCache
from repro.errors import TraceError
from repro.memtrace import TraceStore
from repro.sim import (
    CacheGeometry,
    EngineMismatchError,
    MemoryTiming,
    StandardCache,
    TwoLevelCache,
    cross_validate_stream,
    simulate,
    simulate_stream,
)
from repro.sim.engine import PARITY_FIELDS
from repro.stream import TraceStream, open_trace

from conftest import make_trace

TIMING = MemoryTiming(latency=10, bus_bytes_per_cycle=16)


def random_trace(seed, refs=3000, lines=256, write_ratio=0.3):
    rng = np.random.default_rng(seed)
    return make_trace(
        (rng.integers(0, lines * 4, refs) * 8).tolist(),
        is_write=(rng.random(refs) < write_ratio).tolist(),
        temporal=(rng.random(refs) < 0.25).tolist(),
        spatial=(rng.random(refs) < 0.25).tolist(),
        gaps=rng.integers(0, 5, refs).tolist(),
        name=f"rand{seed}",
    )


def assert_parity(reference, streamed):
    bad = {
        name: (getattr(reference, name), getattr(streamed, name))
        for name in PARITY_FIELDS
        if getattr(reference, name) != getattr(streamed, name)
    }
    assert not bad, f"streamed counters diverge: {bad}"


def model_state(model):
    state = {}
    for attr in ("_tags", "_dirty", "_temporal", "_sets", "_ready_at",
                 "_bus_free_at"):
        if hasattr(model, attr):
            state[attr] = copy.deepcopy(getattr(model, attr))
    state["wb"] = (model.write_buffer.pushes, model.write_buffer.stall_cycles)
    return state


class TestStreamBasics:
    def test_needs_exactly_one_backend(self):
        with pytest.raises(TraceError):
            TraceStream()
        with pytest.raises(TraceError):
            TraceStream(
                store=object(), trace=make_trace([0])  # type: ignore
            )

    def test_trace_backed_windows(self):
        trace = random_trace(1, refs=250)
        stream = TraceStream.from_trace(trace, chunk_refs=100)
        assert len(stream) == 250
        assert stream.n_chunks == 3
        assert stream.name == trace.name
        assert stream.fingerprint() == trace.fingerprint()
        chunks = list(stream)
        assert [len(c) for c in chunks] == [100, 100, 50]
        # windows are zero-copy views of the backing columns
        assert chunks[0].addresses.base is not None
        assert stream.load() is trace

    def test_store_backed_stream(self, tmp_path):
        trace = random_trace(2, refs=500)
        store = TraceStore.save(trace, tmp_path / "t.store", chunk_refs=64)
        stream = TraceStream.from_store(store)
        assert len(stream) == 500
        assert stream.chunk_refs == 64
        assert stream.fingerprint() == trace.fingerprint()
        gathered = np.concatenate([c.addresses for c in stream.chunks()])
        assert (gathered == trace.addresses).all()

    def test_restartable_iteration(self, tmp_path):
        store = TraceStore.save(
            random_trace(3, refs=300), tmp_path / "t.store", chunk_refs=100
        )
        stream = TraceStream.from_store(store)
        first = [c.addresses[0] for c in stream]
        second = [c.addresses[0] for c in stream]
        assert first == second

    def test_prefetch_matches_serial(self, tmp_path):
        trace = random_trace(4, refs=1000)
        store = TraceStore.save(trace, tmp_path / "t.store", chunk_refs=64)
        stream = TraceStream.from_store(store)
        serial = [c.addresses for c in stream.chunks(prefetch=0)]
        ahead = [c.addresses for c in stream.chunks(prefetch=3)]
        assert all((a == b).all() for a, b in zip(serial, ahead))

    def test_open_dispatches_by_format(self, tmp_path):
        from repro.memtrace.io import save_trace

        trace = random_trace(5, refs=200)
        save_trace(trace, tmp_path / "t.npz")
        TraceStore.save(trace, tmp_path / "t.store", chunk_refs=50)
        for path in (tmp_path / "t.npz", tmp_path / "t.store"):
            stream = open_trace(path)
            assert stream.fingerprint() == trace.fingerprint()

    def test_store_stream_pickles_without_data(self, tmp_path):
        trace = random_trace(6, refs=400)
        store = TraceStore.save(trace, tmp_path / "t.store", chunk_refs=64)
        stream = TraceStream.from_store(store)
        blob = pickle.dumps(stream)
        # manifest + path only: far below the ~130 KB of column data
        assert len(blob) < 16_384
        clone = pickle.loads(blob)
        assert clone.fingerprint() == trace.fingerprint()
        assert (clone.load().addresses == trace.addresses).all()


class TestReferenceEngineParity:
    @pytest.mark.parametrize("chunk_refs", [1, 37, 500, 10_000])
    def test_standard_cache(self, chunk_refs):
        trace = random_trace(10)
        build = lambda: StandardCache(CacheGeometry(1024, 32), TIMING)
        ref = simulate(build(), trace, engine="reference")
        m = build()
        streamed = simulate_stream(
            m, TraceStream.from_trace(trace, chunk_refs=chunk_refs),
            engine="reference",
        )
        assert_parity(ref, streamed)

    @pytest.mark.parametrize("chunk_refs", [1, 37, 500])
    def test_soft_cache_all_assists(self, chunk_refs):
        # Virtual lines ON with tiny chunks: fetches constantly straddle
        # chunk boundaries; bounce-back swaps and temporal bits carry.
        config = SoftCacheConfig(
            size_bytes=1024, line_size=32, ways=1, bounce_back_lines=4,
            virtual_line_size=128, timing=TIMING,
        )
        trace = random_trace(11)
        build = lambda: SoftwareAssistedCache(config)
        ref = simulate(build(), trace, engine="reference")
        # auto now picks the batch kernels for this config; pin the
        # engine — this class covers the windowed reference loop.
        streamed = simulate_stream(
            build(), TraceStream.from_trace(trace, chunk_refs=chunk_refs),
            engine="reference",
        )
        assert streamed.engine == "reference"
        assert_parity(ref, streamed)

    def test_write_through_cache(self):
        trace = random_trace(12)
        build = lambda: StandardCache(
            CacheGeometry(1024, 32), TIMING, write_policy="write-through"
        )
        ref = simulate(build(), trace, engine="reference")
        streamed = simulate_stream(
            build(), TraceStream.from_trace(trace, chunk_refs=97)
        )
        assert_parity(ref, streamed)

    def test_two_level_hierarchy(self):
        trace = random_trace(13)
        build = lambda: TwoLevelCache(
            StandardCache(CacheGeometry(1024, 32), TIMING),
            CacheGeometry(8192, 64, 2),
            12,
        )
        ref = simulate(build(), trace, engine="reference")
        streamed = simulate_stream(
            build(), TraceStream.from_trace(trace, chunk_refs=173)
        )
        assert streamed.engine == "reference"
        assert_parity(ref, streamed)

    def test_warmup_window_carries_across_chunks(self):
        trace = random_trace(14, refs=800)
        build = lambda: StandardCache(CacheGeometry(1024, 32), TIMING)
        ref = simulate(build(), trace, engine="reference", warmup_refs=350)
        streamed = simulate_stream(
            build(), TraceStream.from_trace(trace, chunk_refs=100),
            warmup_refs=350,
        )
        assert_parity(ref, streamed)


class TestFastEngineParity:
    @pytest.mark.parametrize("ways", [1, 2, 4])
    @pytest.mark.parametrize("chunk_refs", [1, 37, 500, 10_000])
    def test_counters_and_state(self, ways, chunk_refs):
        trace = random_trace(20 + ways)
        build = lambda: StandardCache(CacheGeometry(2048, 32, ways), TIMING)
        m_ref = build()
        ref = simulate(m_ref, trace, engine="reference")
        m_fast = build()
        streamed = simulate_stream(
            m_fast, TraceStream.from_trace(trace, chunk_refs=chunk_refs),
            engine="fast",
        )
        assert streamed.engine == "fast"
        assert_parity(ref, streamed)
        assert model_state(m_ref) == model_state(m_fast)

    def test_unbuffered_write_buffer(self):
        timing = MemoryTiming(
            latency=10, bus_bytes_per_cycle=16, write_buffer_entries=0
        )
        trace = random_trace(30, write_ratio=0.6)
        build = lambda: StandardCache(CacheGeometry(512, 32), timing)
        ref = simulate(build(), trace, engine="reference")
        streamed = simulate_stream(
            build(), TraceStream.from_trace(trace, chunk_refs=41),
            engine="fast",
        )
        assert_parity(ref, streamed)

    def test_plain_soft_model(self):
        # Software-assisted model with assists off is fast-eligible;
        # its per-line temporal bits must carry across chunks too.
        config = SoftCacheConfig(
            size_bytes=1024, line_size=32, ways=1, bounce_back_lines=0,
            virtual_line_size=None, timing=TIMING,
        )
        trace = random_trace(31)
        build = lambda: SoftwareAssistedCache(config)
        m_ref = build()
        ref = simulate(m_ref, trace, engine="fast")
        m_stream = build()
        streamed = simulate_stream(
            m_stream, TraceStream.from_trace(trace, chunk_refs=59),
            engine="fast",
        )
        assert_parity(ref, streamed)
        assert model_state(m_ref) == model_state(m_stream)

    def test_from_store_matches_from_trace(self, tmp_path):
        trace = random_trace(32)
        store = TraceStore.save(trace, tmp_path / "t.store", chunk_refs=128)
        build = lambda: StandardCache(CacheGeometry(1024, 32), TIMING)
        a = simulate_stream(build(), TraceStream.from_store(store))
        b = simulate_stream(
            build(), TraceStream.from_trace(trace, chunk_refs=128)
        )
        assert_parity(a, b)


class TestCrossValidateStream:
    def test_passes_on_exact_models(self, tmp_path):
        trace = random_trace(40)
        store = TraceStore.save(trace, tmp_path / "t.store", chunk_refs=100)
        build = lambda: StandardCache(CacheGeometry(1024, 32), TIMING)
        for engine in ("reference", "fast"):
            result = cross_validate_stream(
                build, TraceStream.from_store(store), engine=engine
            )
            assert result.engine == engine

    def test_detects_divergence(self):
        # A deliberately broken "model" whose behaviour depends on how
        # many times it has been built: streamed and monolithic runs see
        # different builds, so the counters diverge.
        calls = []

        def build():
            calls.append(None)
            hit_time = 1 + (len(calls) > 1)
            timing = MemoryTiming(
                latency=10, bus_bytes_per_cycle=16, hit_time=hit_time
            )
            return StandardCache(CacheGeometry(1024, 32), timing)

        trace = random_trace(41, refs=300)
        with pytest.raises(EngineMismatchError):
            cross_validate_stream(
                build, TraceStream.from_trace(trace, chunk_refs=50),
                engine="reference",
            )


class TestPropertyParity:
    """Any trace round-tripped through a v2 store and simulated
    chunk-wise matches the in-memory counters exactly — both engines,
    virtual-line fetches straddling chunk boundaries included."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        refs=st.integers(1, 400),
        chunk_refs=st.integers(1, 97),
        ways=st.sampled_from([1, 2]),
    )
    def test_store_roundtrip_both_engines(
        self, tmp_path_factory, seed, refs, chunk_refs, ways
    ):
        rng = np.random.default_rng(seed)
        trace = make_trace(
            (rng.integers(0, 128, refs) * 8).tolist(),
            is_write=(rng.random(refs) < 0.4).tolist(),
            temporal=(rng.random(refs) < 0.3).tolist(),
            spatial=(rng.random(refs) < 0.3).tolist(),
            gaps=rng.integers(0, 6, refs).tolist(),
            name=f"prop{seed}",
        )
        root = tmp_path_factory.mktemp("store") / "t.store"
        store = TraceStore.save(trace, root, chunk_refs=chunk_refs)
        assert store.fingerprint() == trace.fingerprint()
        stream = TraceStream.from_store(store)

        # fast-eligible standard cache: both engines
        plain = lambda: StandardCache(CacheGeometry(512, 32, ways), TIMING)
        for engine in ("reference", "fast"):
            assert_parity(
                simulate(plain(), trace, engine=engine),
                simulate_stream(plain(), stream, engine=engine),
            )

        # full assists (virtual lines spanning chunk boundaries):
        # reference engine only
        assisted = lambda: SoftwareAssistedCache(SoftCacheConfig(
            size_bytes=512, line_size=32, ways=ways, bounce_back_lines=2,
            virtual_line_size=64, timing=TIMING,
        ))
        assert_parity(
            simulate(assisted(), trace, engine="reference"),
            simulate_stream(assisted(), stream),
        )
