"""Tests for the experiment batch runner and registry plumbing."""

import pytest

from repro.experiments import ALL_FIGURES, EXTENSION_STUDIES
from repro.experiments.__main__ import main as battery_main
from repro.workloads import (
    get_blocked_mm_trace,
    get_blocked_mv_trace,
    get_kernel_trace,
)


class TestRegistries:
    def test_paper_figures_complete(self):
        # One driver per paper figure: 1a/b, 3a/b, 4a/b, 6a/b, 7a/b,
        # 8a/b, 9a/b, 10a/b, 11a/b, 12.
        assert len(ALL_FIGURES) == 19

    def test_no_overlap_between_registries(self):
        assert not set(ALL_FIGURES) & set(EXTENSION_STUDIES)

    def test_all_drivers_accept_scale(self):
        import inspect

        for name, driver in {**ALL_FIGURES, **EXTENSION_STUDIES}.items():
            parameters = inspect.signature(driver).parameters
            assert "scale" in parameters, name


class TestBatteryMain:
    def test_single_figure(self, capsys):
        assert battery_main(["tiny", "fig4b"]) == 0
        out = capsys.readouterr().out
        assert "fig4b" in out and "[fig4b:" in out

    def test_extension_by_name(self, capsys):
        assert battery_main(["tiny", "attribution"]) == 0
        assert "attribution" in capsys.readouterr().out


class TestTraceRegistries:
    def test_kernel_trace_cached(self):
        a = get_kernel_trace("ADM", "tiny")
        b = get_kernel_trace("ADM", "tiny")
        assert a is b

    def test_blocked_traces_cached_by_parameters(self):
        a = get_blocked_mv_trace(10, "tiny")
        b = get_blocked_mv_trace(10, "tiny")
        c = get_blocked_mv_trace(20, "tiny")
        assert a is b and a is not c

    def test_blocked_mm_copy_flag_distinguished(self):
        a = get_blocked_mm_trace(116, False, "tiny")
        b = get_blocked_mm_trace(116, True, "tiny")
        assert a is not b
        assert len(b) > len(a)  # the copy phase adds references
