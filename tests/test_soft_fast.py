"""Assisted-path batch kernels: exactness over the whole soft family.

:mod:`repro.sim.fast_soft` claims bit-exactness with the reference
per-reference loop for every software-assisted configuration without
prefetching — bounce-back buffers (any associativity), virtual-line
burst fetches, temporal-bit admission and replacement, and their
combinations.  These tests drive randomized tagged workloads that
exercise every mechanism (assist hits, bounces, bounce aborts,
invalidations, virtual-line sibling traffic, write-buffer stalls) and
assert counter-, state- and telemetry-parity — monolithic and streamed
at awkward chunk sizes.

The selection regression lives here too: the soft preset family must
keep auto-selecting the fast engine (``engine_refusal is None``), and
the bench guard must notice if it ever stops.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import presets
from repro.core import SoftCacheConfig, SoftwareAssistedCache
from repro.harness.bench import soft_bench_guard, soft_bench_trace
from repro.memtrace import Trace
from repro.sim import MemoryTiming, cross_validate, cross_validate_stream, simulate
from repro.sim.engine import fast_refusal
from repro.stream import TraceStream
from repro.telemetry import analyze

TIMING = MemoryTiming(latency=12, bus_bytes_per_cycle=8)


@pytest.fixture(autouse=True)
def _default_engine_knob(monkeypatch):
    """Selection tests assume the default knob; shield against a
    REPRO_ENGINE leaked by another module's CLI test."""
    monkeypatch.delenv("REPRO_ENGINE", raising=False)


def soft_trace(seed, refs=6000):
    """A tagged mix of temporal reuse, spatial streaming and noise.

    Hot lines (temporal-tagged) conflict with a strided stream
    (spatial-tagged) and untagged scatter across a footprint several
    times the 1 KB test cache — enough pressure that every assist
    mechanism fires (asserted in ``test_workload_exercises_assists``).
    """
    rng = np.random.default_rng(seed)
    kind = rng.random(refs)
    addr = np.where(
        kind < 0.55, rng.integers(0, 1200, refs) * 8,
        np.where(
            kind < 0.85,
            (1 << 18) + rng.integers(0, 1 << 14, refs) * 8,
            rng.integers(0, 1 << 16, refs),
        ),
    )
    return Trace(
        addr.astype(np.int64),
        rng.random(refs) < 0.3,
        kind < 0.55,
        (kind >= 0.55) & (kind < 0.85),
        rng.integers(0, 4, refs).astype(np.int64),
        name=f"soft-par-{seed}",
    )


def soft_config(**overrides):
    """The full assisted configuration, shrunk to a 1 KB cache."""
    base = dict(
        size_bytes=1024, line_size=32, ways=1, bounce_back_lines=8,
        virtual_line_size=64, use_temporal=True, timing=TIMING,
    )
    base.update(overrides)
    return SoftCacheConfig(**base)


#: Every mechanism combination the kernels claim to cover.
VARIANTS = {
    "full": {},
    "bb-only": dict(virtual_line_size=None),
    "vl-only": dict(bounce_back_lines=0, use_temporal=False),
    "vl-wide": dict(virtual_line_size=128),
    "bb-set-assoc": dict(bounce_back_ways=2),
    "no-temporal": dict(use_temporal=False),
    "keep-on-bounce": dict(reset_temporal_on_bounce=False),
    "strict-admit": dict(admit_non_temporal=False),
    "temporal-priority": dict(temporal_priority=True),
    "two-way": dict(ways=2),
    "tiny-wb": dict(timing=MemoryTiming(
        latency=12, bus_bytes_per_cycle=8, write_buffer_entries=1)),
    "no-wb": dict(timing=MemoryTiming(
        latency=12, bus_bytes_per_cycle=8, write_buffer_entries=0)),
}


def build_variant(name):
    return SoftwareAssistedCache(soft_config(**VARIANTS[name]))


class TestCounterParity:
    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("name", list(VARIANTS))
    def test_randomized(self, name, seed):
        cross_validate(lambda: build_variant(name), soft_trace(seed))

    def test_workload_exercises_assists(self):
        """The parity workload is only meaningful if the machinery it
        claims to verify actually fires."""
        result = simulate(build_variant("full"), soft_trace(0),
                          engine="reference")
        assert result.hits_assist > 0
        assert result.bounce_backs > 0
        assert result.bounce_aborts > 0
        assert result.swaps > 0
        assert result.writebacks > 0
        # Virtual-line bursts landing on a bounce-back resident are
        # rare; sum across the VL-heavy variants and both seeds.
        invalidations = sum(
            simulate(build_variant(n), soft_trace(seed),
                     engine="reference").invalidations
            for n in ("vl-wide", "bb-set-assoc", "two-way")
            for seed in (0, 1)
        )
        assert invalidations > 0

    def test_stalls_exercised(self):
        result = simulate(build_variant("no-wb"), soft_trace(1),
                          engine="reference")
        assert result.write_buffer_stalls > 0


class TestStreamedParity:
    @pytest.mark.parametrize("chunk_refs", [97, 512, 4096])
    def test_chunked_equals_monolithic(self, chunk_refs):
        stream = TraceStream.from_trace(soft_trace(3), chunk_refs=chunk_refs)
        result = cross_validate_stream(
            lambda: build_variant("full"), stream, engine="fast"
        )
        assert result.engine == "fast"

    def test_streamed_fast_equals_reference(self):
        stream = TraceStream.from_trace(soft_trace(4), chunk_refs=257)
        reference = cross_validate_stream(
            lambda: build_variant("full"), stream, engine="reference"
        )
        fast = cross_validate_stream(
            lambda: build_variant("full"), stream, engine="fast"
        )
        assert reference.cycles == fast.cycles
        assert reference.misses == fast.misses
        assert reference.bounce_backs == fast.bounce_backs


class TestStateParity:
    def test_final_model_state(self):
        trace = soft_trace(5)
        reference, fast = build_variant("full"), build_variant("full")
        simulate(reference, trace, engine="reference")
        simulate(fast, trace, engine="fast")
        for address in range(0, 1 << 16, 32):
            assert reference.contains(address) == fast.contains(address)
            assert reference.temporal_bit(address) == (
                fast.temporal_bit(address))
        assert sorted(
            tuple(e) for e in reference.bounce_back.entries()
        ) == sorted(tuple(e) for e in fast.bounce_back.entries())
        assert reference._ready_at == fast._ready_at
        assert reference.last_fetch == fast.last_fetch
        assert reference.write_buffer.pushes == fast.write_buffer.pushes
        assert list(reference.write_buffer._completions) == (
            list(fast.write_buffer._completions))


class TestTelemetryParity:
    def test_sections_identical(self):
        trace = soft_trace(6, refs=8000)
        reference = analyze(build_variant("full"), trace,
                            engine="reference")
        fast = analyze(build_variant("full"), trace, engine="fast")
        streamed = analyze(
            build_variant("full"),
            TraceStream.from_trace(trace, chunk_refs=513),
            engine="fast",
        )
        for key in reference.sections:
            assert repr(reference.sections[key]) == (
                repr(fast.sections[key])), key
            assert repr(reference.sections[key]) == (
                repr(streamed.sections[key])), key


short_tagged_streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=95).map(lambda k: k * 8),
        st.booleans(), st.booleans(), st.booleans(),
        st.integers(min_value=0, max_value=4),
    ),
    min_size=1,
    max_size=60,
)


class TestHypothesisParity:
    @settings(max_examples=120, deadline=None)
    @given(stream=short_tagged_streams)
    def test_arbitrary_tagged_streams(self, stream):
        trace = Trace(
            np.array([a for a, _, _, _, _ in stream], dtype=np.int64),
            np.array([w for _, w, _, _, _ in stream], dtype=bool),
            np.array([t for _, _, t, _, _ in stream], dtype=bool),
            np.array([s for _, _, _, s, _ in stream], dtype=bool),
            np.array([g for _, _, _, _, g in stream], dtype=np.int64),
            name="hyp",
        )
        cross_validate(
            lambda: SoftwareAssistedCache(soft_config(size_bytes=256)),
            trace,
        )


class TestSelectionRegression:
    """auto must keep picking the batch kernels for the soft family."""

    @pytest.mark.parametrize(
        "preset", ["soft", "victim", "temporal", "spatial",
                   "temporal-priority"]
    )
    def test_soft_family_selects_fast(self, preset):
        assert fast_refusal(presets.build_config(preset)) is None
        result = simulate(presets.build_config(preset), soft_trace(0))
        assert result.engine == "fast"
        # The assisted family stays one rung below the native tier; the
        # passed-over rung's refusal is recorded for observability.
        assert result.engine_refusal is not None
        assert result.engine_refusal.code == "native-assisted"

    def test_prefetch_still_refuses(self):
        refusal = fast_refusal(presets.build_config("soft-prefetch"))
        assert refusal is not None and refusal.code == "prefetch"


class TestBenchGuard:
    PAYLOAD = {
        "refusal_matrix": {"soft": None, "victim": None},
        "fast_speedup": {"soft": 12.0, "victim": 11.0},
        "miss_ratio": {"soft": 0.004, "victim": 0.008},
    }

    def test_clean_payload_passes(self):
        assert soft_bench_guard(dict(self.PAYLOAD), 5.0) == []

    def test_low_speedup_flagged(self):
        payload = dict(self.PAYLOAD, fast_speedup={"soft": 3.0,
                                                   "victim": 11.0})
        problems = soft_bench_guard(payload, 5.0)
        assert len(problems) == 1 and "soft" in problems[0]

    def test_refusal_regrowth_flagged(self):
        payload = dict(self.PAYLOAD,
                       refusal_matrix={"soft": "prefetch", "victim": None})
        problems = soft_bench_guard(payload, 5.0)
        assert any("refuses" in p for p in problems)

    def test_missing_fast_row_flagged(self):
        payload = dict(self.PAYLOAD, fast_speedup={"soft": 12.0})
        problems = soft_bench_guard(payload, 5.0)
        assert any("victim" in p and "no fast-engine" in p
                   for p in problems)

    def test_bench_trace_deterministic(self):
        a, b = soft_bench_trace(2000), soft_bench_trace(2000)
        np.testing.assert_array_equal(a.addresses, b.addresses)
        assert not np.any(a.temporal & a.spatial)
        assert a.temporal.any() and a.spatial.any()
