"""Tests for the sweep runner and table rendering."""

import pytest

from repro.core import presets
from repro.harness import Sweep, format_table, run_sweep
from repro.sim import MemoryTiming

from conftest import make_trace


class TestFormatTable:
    def test_alignment_and_content(self):
        table = format_table(
            ["a", "b"],
            {"row1": {"a": 1.5, "b": 2.0}, "row2": {"a": 3.25}},
            row_header="bench",
        )
        lines = table.splitlines()
        assert lines[0].startswith("bench")
        assert "1.500" in table
        assert "-" in lines[-1]  # missing cell placeholder

    def test_precision(self):
        table = format_table(["a"], {"r": {"a": 1.23456}}, precision=1)
        assert "1.2" in table and "1.23" not in table

    def test_string_values(self):
        table = format_table(["a"], {"r": {"a": "yes"}})
        assert "yes" in table


class TestSweep:
    def _sweep(self):
        timing = MemoryTiming(latency=10)
        traces = {
            "t1": make_trace([0, 0, 32]),
            "t2": make_trace([0, 128, 0, 128]),
        }
        configs = {
            "Standard": lambda: presets.standard(
                size_bytes=128, timing=timing
            ),
            "Victim": lambda: presets.victim(
                size_bytes=128, victim_lines=2, timing=timing
            ),
        }
        return run_sweep(traces, configs)

    def test_grid_complete(self):
        sweep = self._sweep()
        assert set(sweep.results) == {"t1", "t2"}
        assert set(sweep.results["t1"]) == {"Standard", "Victim"}
        assert sweep.config_order == ["Standard", "Victim"]

    def test_metric_extraction(self):
        sweep = self._sweep()
        amat = sweep.metric("amat")
        assert amat["t1"]["Standard"] > 1.0

    def test_victim_beats_standard_on_pingpong(self):
        sweep = self._sweep()
        row = sweep.metric("amat")["t2"]
        assert row["Victim"] < row["Standard"]

    def test_fresh_cache_per_cell(self):
        sweep = self._sweep()
        # Both traces start cold: t1's first access must be a miss.
        assert sweep.results["t1"]["Standard"].misses >= 2

    def test_table_renders(self):
        table = self._sweep().table("miss_ratio", precision=2)
        assert "benchmark" in table and "t1" in table
