"""Tests of the prefetching extension (section 4.4).

Same geometry as test_software_cache: 128 B main / 4 sets / 32 B lines;
latency 10, 2-cycle line transfer.
"""

import pytest

from repro.core import SoftCacheConfig, SoftwareAssistedCache
from repro.errors import ConfigError
from repro.sim import MemoryTiming

TIMING = MemoryTiming(latency=10, bus_bytes_per_cycle=16)


def make_cache(mode="software", **overrides):
    config = dict(
        size_bytes=128,
        line_size=32,
        ways=1,
        bounce_back_lines=4,
        virtual_line_size=64,
        prefetch=mode,
        max_prefetched=2,
        timing=TIMING,
    )
    config.update(overrides)
    return SoftwareAssistedCache(SoftCacheConfig(**config))


def access(cache, address, write=False, temporal=False, spatial=False, now=0):
    return cache.access(address, write, temporal=temporal, spatial=spatial, now=now)


class TestSoftwareMode:
    def test_spatial_miss_prefetches_next_line(self):
        c = make_cache()
        access(c, 0, spatial=True, now=0)   # VL {0,32} + prefetch line 64
        assert c.stats.prefetches_issued == 1
        assert c.in_assist(64)
        assert not c.in_main(64)

    def test_non_spatial_miss_does_not_prefetch(self):
        c = make_cache()
        access(c, 0, spatial=False, now=0)
        assert c.stats.prefetches_issued == 0

    def test_prefetch_traffic_counted(self):
        c = make_cache()
        access(c, 0, spatial=True, now=0)
        assert c.stats.words_fetched == 8 + 4  # VL + prefetched line

    def test_progressive_chain(self):
        c = make_cache()
        access(c, 0, spatial=True, now=0)      # prefetch 64
        cycles = access(c, 64, spatial=True, now=1000)
        assert c.stats.prefetch_hits == 1
        assert cycles == TIMING.assist_hit_time  # arrived long ago
        assert c.in_main(64)
        assert c.in_assist(96)                  # the chain continues

    def test_in_flight_prefetch_waits(self):
        c = make_cache()
        access(c, 0, spatial=True, now=0)
        # The prefetch arrives ~2 cycles after the demand miss completes.
        cycles = access(c, 64, spatial=True, now=14)
        assert cycles > TIMING.assist_hit_time

    def test_max_prefetched_cap(self):
        c = make_cache(max_prefetched=2)
        access(c, 0, spatial=True, now=0)        # prefetch 64
        access(c, 256, spatial=True, now=100)    # prefetch 320 (line 10)
        access(c, 512, spatial=True, now=200)    # would exceed the cap
        assert c.bounce_back.prefetched_count() <= 2

    def test_prefetch_skips_cached_lines(self):
        c = make_cache()
        access(c, 64, now=0)                   # line 2 already in main
        access(c, 0, spatial=True, now=100)    # would prefetch line 2
        assert c.stats.prefetches_issued == 0


class TestOnMissMode:
    def test_prefetches_on_any_miss(self):
        c = make_cache(mode="on-miss", virtual_line_size=None,
                       use_temporal=False)
        access(c, 0, spatial=False, now=0)
        assert c.stats.prefetches_issued == 1
        assert c.in_assist(32)

    def test_bus_contention_stacks_prefetch_arrivals(self):
        from repro.core.bounce_back import ARRIVAL

        c = make_cache(mode="on-miss", virtual_line_size=None,
                       use_temporal=False)
        access(c, 0, now=0)     # miss until 12; prefetch of line 1 at 14
        access(c, 256, now=12)  # miss holds the bus until 24
        # The second prefetch (line 9) cannot start its transfer before
        # the demand fetch releases the bus: arrival 26, not 24.
        entry = c.bounce_back.find(288 // 32)
        assert entry is not None
        assert entry[ARRIVAL] == 26


class TestOffMode:
    def test_no_prefetches(self):
        c = make_cache(mode="off")
        access(c, 0, spatial=True, now=0)
        assert c.stats.prefetches_issued == 0


class TestConfigGuards:
    def test_prefetch_requires_buffer(self):
        with pytest.raises(ConfigError):
            SoftCacheConfig(bounce_back_lines=0, virtual_line_size=None,
                            use_temporal=False, prefetch="software")

    def test_unknown_mode(self):
        with pytest.raises(ConfigError):
            SoftCacheConfig(prefetch="aggressive")

    def test_max_prefetched_positive(self):
        with pytest.raises(ConfigError):
            SoftCacheConfig(max_prefetched=0)
