"""Unit and property tests for affine index expressions."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compiler import Affine, var
from repro.errors import CompilerError


class TestConstruction:
    def test_constant(self):
        e = Affine.constant(7)
        assert e.const == 7
        assert e.is_constant()

    def test_variable(self):
        e = var("i")
        assert e.coefficient("i") == 1
        assert e.coefficient("j") == 0
        assert e.variables == {"i"}

    def test_build(self):
        e = Affine.build(2, i=1, j=4)
        assert e.const == 2
        assert e.coefficient("i") == 1
        assert e.coefficient("j") == 4

    def test_zero_coefficients_dropped(self):
        e = Affine.build(0, i=0, j=3)
        assert e.variables == {"j"}

    def test_terms_normalised_for_equality(self):
        a = Affine(1, (("i", 2), ("j", 3)))
        b = Affine(1, (("j", 3), ("i", 2)))
        assert a == b
        assert hash(a) == hash(b)


class TestArithmetic:
    def test_add_int(self):
        assert (var("i") + 5).const == 5

    def test_radd_int(self):
        assert (5 + var("i")).const == 5

    def test_add_affine(self):
        e = var("i") + var("j") + var("i")
        assert e.coefficient("i") == 2
        assert e.coefficient("j") == 1

    def test_sub(self):
        e = var("i") - var("i")
        assert e.is_constant()
        assert e.const == 0

    def test_sub_int(self):
        assert (var("i") - 3).const == -3

    def test_mul(self):
        e = (var("i") + 2) * 3
        assert e.const == 6
        assert e.coefficient("i") == 3

    def test_rmul(self):
        assert (4 * var("k")).coefficient("k") == 4

    def test_neg(self):
        e = -(var("i") + 1)
        assert e.const == -1
        assert e.coefficient("i") == -1

    def test_mul_non_integer_rejected(self):
        with pytest.raises(CompilerError):
            var("i") * 1.5  # noqa: B018

    def test_mul_by_zero_collapses(self):
        e = (var("i") + 3) * 0
        assert e.is_constant()


class TestIntrospection:
    def test_drop_const(self):
        a = Affine.build(5, i=1)
        b = Affine.build(9, i=1)
        assert a.drop_const() == b.drop_const()

    def test_drop_const_distinguishes_linear_parts(self):
        assert Affine.build(0, i=1).drop_const() != Affine.build(0, i=2).drop_const()

    def test_str_readable(self):
        assert "i" in str(var("i") + 2)
        assert str(Affine.constant(0)) == "0"


class TestEvaluation:
    def test_scalar(self):
        e = Affine.build(1, i=2, j=3)
        assert e.evaluate({"i": 10, "j": 100}) == 321

    def test_numpy_broadcast(self):
        e = Affine.build(0, i=1, j=10)
        i = np.arange(3).reshape(3, 1)
        j = np.arange(2).reshape(1, 2)
        out = e.evaluate({"i": i, "j": j})
        assert out.shape == (3, 2)
        assert out[2, 1] == 12

    def test_unbound_variable_raises(self):
        with pytest.raises(CompilerError):
            var("i").evaluate({})

    def test_extra_bindings_ignored(self):
        assert var("i").evaluate({"i": 1, "z": 9}) == 1


small_ints = st.integers(min_value=-50, max_value=50)
var_names = st.sampled_from(["i", "j", "k"])
affines = st.builds(
    lambda c, coeffs: Affine(c, tuple(coeffs.items())),
    small_ints,
    st.dictionaries(var_names, small_ints, max_size=3),
)
envs = st.fixed_dictionaries(
    {"i": small_ints, "j": small_ints, "k": small_ints}
)


class TestProperties:
    @given(affines, affines, envs)
    def test_addition_is_pointwise(self, a, b, env):
        assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)

    @given(affines, small_ints, envs)
    def test_scaling_is_pointwise(self, a, s, env):
        assert (a * s).evaluate(env) == s * a.evaluate(env)

    @given(affines, affines)
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(affines)
    def test_subtracting_self_gives_zero(self, a):
        assert (a - a) == Affine.constant(0)

    @given(affines, envs)
    def test_drop_const_shifts_by_const(self, a, env):
        assert a.evaluate(env) == a.drop_const().evaluate(env) + a.const
