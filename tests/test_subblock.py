"""Tests for the sub-block (sectored) cache baseline."""

import pytest

from repro.errors import ConfigError
from repro.sim import CacheGeometry, MemoryTiming, SubBlockCache

TIMING = MemoryTiming(latency=10, bus_bytes_per_cycle=16)
SUB_PENALTY = 12  # latency + 32-byte sector transfer


def make_cache():
    # 256 B cache, 64 B lines (4 lines), 32 B sub-blocks.
    return SubBlockCache(CacheGeometry(256, 64, 1), sub_block=32, timing=TIMING)


def access(cache, address, now, write=False):
    return cache.access(address, write, temporal=False, spatial=False, now=now)


class TestValidation:
    def test_subblock_must_divide_line(self):
        with pytest.raises(ConfigError):
            SubBlockCache(CacheGeometry(256, 64, 1), sub_block=48)

    def test_subblock_must_fit(self):
        with pytest.raises(ConfigError):
            SubBlockCache(CacheGeometry(256, 32, 1), sub_block=64)

    def test_pow2(self):
        with pytest.raises(ConfigError):
            SubBlockCache(CacheGeometry(256, 64, 1), sub_block=24)


class TestSectoring:
    def test_tag_miss_fetches_one_sector(self):
        c = make_cache()
        assert access(c, 0, now=0) == SUB_PENALTY
        assert c.stats.words_fetched == 4  # one 32 B sector, not 64 B
        assert c.contains(0)
        assert not c.contains(32)  # other sector invalid

    def test_subblock_miss(self):
        c = make_cache()
        access(c, 0, now=0)
        cycles = access(c, 32, now=100)  # same line, other sector
        assert cycles == SUB_PENALTY
        assert c.stats.misses == 2
        assert c.contains(32)

    def test_hit_within_sector(self):
        c = make_cache()
        access(c, 0, now=0)
        assert access(c, 24, now=100) == 1

    def test_no_neighbour_prefetch(self):
        # The §2.1 contrast with virtual lines: a stride-one stream still
        # misses once per *sector*.
        c = make_cache()
        misses_per_word = []
        for k in range(16):
            access(c, 8 * k, now=1000 * k)
        assert c.stats.misses == 4  # one per 32 B sector over 128 B

    def test_tag_replacement_invalidates_sectors(self):
        c = make_cache()
        access(c, 0, now=0)
        access(c, 32, now=100)
        access(c, 256, now=200)   # same set (4 sets * 64 B): evicts line 0
        assert not c.contains(0) and not c.contains(32)
        assert access(c, 0, now=300) == SUB_PENALTY


class TestWrites:
    def test_dirty_sector_written_back(self):
        c = make_cache()
        access(c, 0, now=0, write=True)
        access(c, 256, now=100)
        assert c.stats.writebacks == 1

    def test_clean_line_no_writeback(self):
        c = make_cache()
        access(c, 0, now=0)
        access(c, 256, now=100)
        assert c.stats.writebacks == 0

    def test_write_to_valid_sector_hits(self):
        c = make_cache()
        access(c, 0, now=0)
        assert access(c, 0, now=100, write=True) == 1


class TestAccounting:
    def test_conservation(self):
        c = make_cache()
        for k, addr in enumerate([0, 32, 0, 256, 8, 40]):
            access(c, addr, now=100 * k)
        s = c.stats
        assert s.refs == s.hits_main + s.hits_assist + s.misses

    def test_reset(self):
        c = make_cache()
        access(c, 0, now=0)
        c.reset()
        assert not c.contains(0) and c.stats.refs == 0
