"""Edge cases of the software-assisted cache: write-buffer pressure,
bounce aborts, set-associative interactions, prefetch corner cases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SoftCacheConfig, SoftwareAssistedCache
from repro.sim import CacheGeometry, MemoryTiming, StandardCache, simulate

from conftest import make_trace


def make_cache(**overrides):
    config = dict(
        size_bytes=128,
        line_size=32,
        ways=1,
        bounce_back_lines=2,
        virtual_line_size=None,
        timing=MemoryTiming(latency=10, bus_bytes_per_cycle=16),
    )
    config.update(overrides)
    return SoftwareAssistedCache(SoftCacheConfig(**config))


def access(cache, address, write=False, temporal=False, spatial=False, now=0):
    return cache.access(address, write, temporal=temporal, spatial=spatial, now=now)


class TestWriteBufferPressure:
    def test_bounce_onto_dirty_line_aborted_when_buffer_full(self):
        # A zero-entry write buffer is always full: a bounce that would
        # displace a dirty main line must abort (section 2.2).
        timing = MemoryTiming(
            latency=10, bus_bytes_per_cycle=16, write_buffer_entries=0
        )
        c = make_cache(timing=timing)
        access(c, 0, write=True, temporal=True, now=0)   # dirty+temporal
        access(c, 128, write=True, now=100)   # dirty occupant of set 0
        # Fill set 1 to evict 0 from the buffer.
        access(c, 32, now=200)
        access(c, 160, now=300)
        access(c, 288, now=400)   # buffer overflow: 0 would bounce onto
        #                           dirty 128 -> aborted
        assert c.stats.bounce_backs == 0
        assert c.stats.bounce_aborts >= 1
        assert c.in_main(128)

    def test_zero_write_buffer_stalls_evictions(self):
        timing = MemoryTiming(
            latency=10, bus_bytes_per_cycle=16, write_buffer_entries=0
        )
        c = make_cache(timing=timing, bounce_back_lines=0)
        access(c, 0, write=True, now=0)
        cycles = access(c, 128, now=100)  # evicts dirty 0 synchronously
        assert cycles > timing.miss_penalty(1, 32)
        assert c.stats.write_buffer_stalls > 0

    def test_dirty_data_never_lost_on_abort(self):
        timing = MemoryTiming(
            latency=10, bus_bytes_per_cycle=16, write_buffer_entries=0
        )
        c = make_cache(timing=timing)
        access(c, 0, write=True, temporal=True, now=0)
        access(c, 128, write=True, now=100)
        access(c, 32, now=200)
        access(c, 160, now=300)
        access(c, 288, now=400)
        # The aborted dirty line 0 must have been written back.
        assert c.stats.writebacks >= 1


class TestSetAssociativeSoft:
    def test_two_way_with_bounce_back(self):
        c = make_cache(size_bytes=256, ways=2, bounce_back_lines=2)
        # Set 0 holds two of {0, 256, 512}: third evicts LRU into buffer.
        access(c, 0, temporal=True, now=0)
        access(c, 256, now=100)
        access(c, 512, now=200)   # 0 -> bounce-back buffer
        assert c.in_assist(0)
        assert access(c, 0, now=300) == 3  # swap back
        c.check_exclusive()

    def test_swap_respects_temporal_priority(self):
        c = make_cache(
            size_bytes=256, ways=2, bounce_back_lines=2,
            temporal_priority=True,
        )
        access(c, 0, temporal=True, now=0)
        access(c, 256, now=100)          # non-temporal way
        access(c, 512, now=200)          # evicts 256 (non-temporal), not 0
        assert c.in_main(0)
        assert c.in_assist(256)


class TestVirtualLineEdges:
    def test_virtual_line_at_address_zero(self):
        c = make_cache(virtual_line_size=64)
        access(c, 0, spatial=True, now=0)
        assert c.in_main(0) and c.in_main(32)

    def test_virtual_line_whole_cache(self):
        # Virtual line == cache size: legal, fills every set once.
        c = make_cache(virtual_line_size=128)
        access(c, 0, spatial=True, now=0)
        assert all(c.in_main(32 * k) for k in range(4))
        c.check_exclusive()

    def test_write_allocates_virtual_line_clean_neighbours(self):
        c = make_cache(virtual_line_size=64)
        access(c, 0, write=True, spatial=True, now=0)
        access(c, 128, now=100)    # evict line 0 (dirty) -> buffer
        access(c, 160, now=200)    # evict line 1 (clean) -> buffer
        # Overflow the 2-line buffer; only the dirty line writes back.
        access(c, 32 + 512, now=300)
        access(c, 64 + 512, now=400)
        access(c, 96 + 512, now=500)
        assert c.stats.writebacks == 1

    def test_hits_in_both_halves_of_virtual_line(self):
        c = make_cache(virtual_line_size=64)
        access(c, 0, spatial=True, now=0)
        assert access(c, 40, now=100) == 1
        assert access(c, 24, now=200) == 1


class TestPrefetchEdges:
    def test_prefetch_entry_not_bounced(self):
        # A prefetched-but-never-used line must be discarded, not bounced.
        c = make_cache(
            bounce_back_lines=2, virtual_line_size=None,
            prefetch="on-miss", max_prefetched=2,
        )
        access(c, 0, now=0)            # prefetches line 1 into the buffer
        access(c, 128, now=100)        # victim 0 -> buffer
        access(c, 256, now=200)        # victim 128 -> buffer: overflow
        access(c, 384, now=300)
        assert c.stats.bounce_backs == 0
        c.check_exclusive()

    def test_prefetch_hit_write(self):
        c = make_cache(
            bounce_back_lines=2, virtual_line_size=None,
            prefetch="on-miss", max_prefetched=2,
        )
        access(c, 0, now=0)
        access(c, 32, write=True, now=1000)   # prefetched line, written
        assert c.in_main(32)
        access(c, 32 + 128, now=2000)         # evict it (dirty)
        access(c, 32 + 256, now=3000)
        access(c, 32 + 384, now=4000)
        assert c.stats.writebacks >= 1


class TestCrossValidationWithWritePressure:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=63).map(lambda k: k * 8),
                st.booleans(),
            ),
            min_size=1,
            max_size=60,
        ),
        st.sampled_from([0, 1, 8]),
    )
    def test_disabled_soft_equals_standard_under_pressure(
        self, stream, wb_entries
    ):
        timing = MemoryTiming(
            latency=10, bus_bytes_per_cycle=16,
            write_buffer_entries=wb_entries,
        )
        trace = make_trace(
            [a for a, _ in stream],
            is_write=[w for _, w in stream],
            gaps=[2] * len(stream),
        )
        plain = StandardCache(CacheGeometry(128, 32, 1), timing)
        disabled = SoftwareAssistedCache(
            SoftCacheConfig(
                size_bytes=128, line_size=32, bounce_back_lines=0,
                virtual_line_size=None, use_temporal=False, timing=timing,
            )
        )
        a = simulate(plain, trace)
        b = simulate(disabled, trace)
        assert a.cycles == b.cycles
        assert a.write_buffer_stalls == b.write_buffer_stalls
