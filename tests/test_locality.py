"""Tests of the section 2.3 locality analysis — including the paper's own
figure 5 example as ground truth."""

import pytest

from repro.compiler import (
    Array,
    ArrayRef,
    Loop,
    Program,
    analyze_nest,
    analyze_program,
    linearize,
    nest,
    var,
)
from repro.compiler.locality import NestTags
from repro.errors import CompilerError

i, j, k = var("i"), var("j"), var("k")


def tags_of(loop_nest, arrays):
    arrays = {a.name: a for a in arrays}
    return analyze_nest(loop_nest, arrays)


class TestLinearize:
    def test_column_major(self):
        a = Array("A", (10, 5))
        offset = linearize(ArrayRef("A", (i, j)), a)
        assert offset.coefficient("i") == 1
        assert offset.coefficient("j") == 10

    def test_constant_folded(self):
        a = Array("A", (10, 5))
        offset = linearize(ArrayRef("A", (i + 2, j + 1)), a)
        assert offset.const == 12

    def test_dimension_mismatch(self):
        with pytest.raises(CompilerError):
            linearize(ArrayRef("A", (i,)), Array("A", (4, 4)))

    def test_indirect_rejected(self):
        with pytest.raises(CompilerError):
            linearize(ArrayRef("A", (i,), indirect=(0,)), Array("A", (4,)))


class TestFigure5GroundTruth:
    """The paper's instrumented loop (figure 5) with its published tags."""

    def test_exact_tags(self, fig5_program):
        loop = fig5_program.items[0]
        tags = analyze_nest(loop, fig5_program.arrays)
        got = [(t.temporal, t.spatial) for t in tags.body]
        assert got == [
            (False, False),  # A(I,J): stride N, touched once
            (True, False),   # B(J,I): group follower
            (True, True),    # B(J,I+1): group leader
            (True, True),    # X(J): invariant in I
            (True, True),    # Y(I) read
            (True, True),    # Y(I) write
        ]


class TestSpatialRule:
    def _tags(self, subscript, shape=(64, 64)):
        a = Array("A", shape)
        loop = nest([Loop("i", 0, 8), Loop("j", 0, 8)], [ArrayRef("A", subscript)])
        return tags_of(loop, [a]).body[0]

    def test_stride_one_spatial(self):
        assert self._tags((j, i)).spatial

    def test_stride_three_spatial(self):
        assert self._tags((j * 3, i)).spatial

    def test_stride_four_not_spatial(self):
        assert not self._tags((j * 4, i)).spatial

    def test_leading_dimension_stride_not_spatial(self):
        assert not self._tags((i, j)).spatial

    def test_stride_zero_spatial(self):
        # Y(I) in figure 5: invariant in the innermost loop still gets
        # the spatial tag (coefficient 0 < 4).
        assert self._tags((i, 0)).spatial

    def test_loop_step_scales_stride(self):
        a = Array("A", (64,))
        loop = nest([Loop("i", 0, 64, step=4)], [ArrayRef("A", (i,))])
        assert not tags_of(loop, [a]).body[0].spatial

    def test_parametric_stride_never_spatial(self):
        a = Array("A", (64, 64))
        loop = nest(
            [Loop("i", 0, 8), Loop("j", 0, 8)],
            [ArrayRef("A", (j, i), parametric_stride=True)],
        )
        assert not tags_of(loop, [a]).body[0].spatial

    def test_custom_threshold(self):
        a = Array("A", (64, 64))
        loop = nest(
            [Loop("i", 0, 8), Loop("j", 0, 8)], [ArrayRef("A", (j * 4, i))]
        )
        wide = analyze_nest(loop, {"A": a}, spatial_threshold=8)
        assert wide.body[0].spatial


class TestTemporalRule:
    def test_invariant_loop_gives_temporal(self):
        a = Array("X", (64,))
        loop = nest([Loop("i", 0, 8), Loop("j", 0, 8)], [ArrayRef("X", (j,))])
        assert tags_of(loop, [a]).body[0].temporal

    def test_single_trip_loop_gives_no_reuse(self):
        a = Array("X", (64,))
        loop = nest([Loop("i", 0, 1), Loop("j", 0, 8)], [ArrayRef("X", (j,))])
        assert not tags_of(loop, [a]).body[0].temporal

    def test_opaque_loop_hides_reuse(self):
        a = Array("X", (64,))
        loop = nest(
            [Loop("i", 0, 8, opaque=True), Loop("j", 0, 8)],
            [ArrayRef("X", (j,))],
        )
        assert not tags_of(loop, [a]).body[0].temporal

    def test_group_dependence_both_temporal(self):
        a = Array("B", (64, 64))
        loop = nest(
            [Loop("i", 0, 8), Loop("j", 0, 8)],
            [ArrayRef("B", (j, i)), ArrayRef("B", (j, i + 1))],
        )
        tags = tags_of(loop, [a]).body
        assert tags[0].temporal and tags[1].temporal

    def test_non_uniform_group_not_detected(self):
        # A(I,J) vs A(J,I): non-uniformly generated — the paper's simple
        # analysis cannot see it.
        a = Array("A", (8, 8))
        loop = nest(
            [Loop("i", 0, 8), Loop("j", 0, 8)],
            [ArrayRef("A", (i, j)), ArrayRef("A", (j, i))],
        )
        tags = tags_of(loop, [a]).body
        assert not tags[0].temporal and not tags[1].temporal

    def test_read_write_pair_temporal(self):
        a = Array("V", (64,))
        loop = nest(
            [Loop("j", 0, 8)],
            [ArrayRef("V", (j,)), ArrayRef("V", (j,), is_write=True)],
        )
        tags = tags_of(loop, [a]).body
        assert tags[0].temporal and tags[1].temporal


class TestGroupLeaderRule:
    def test_follower_loses_spatial(self):
        b = Array("B", (8, 9))
        loop = nest(
            [Loop("i", 0, 8), Loop("j", 0, 8)],
            [ArrayRef("B", (j, i)), ArrayRef("B", (j, i + 1))],
        )
        tags = tags_of(loop, [b]).body
        assert not tags[0].spatial  # B(J,I) follows B(J,I+1)
        assert tags[1].spatial

    def test_same_offset_group_keeps_spatial(self):
        # Read/write pair at identical offsets: no leader/follower split.
        v = Array("V", (64,))
        loop = nest(
            [Loop("j", 0, 8)],
            [ArrayRef("V", (j,)), ArrayRef("V", (j,), is_write=True)],
        )
        tags = tags_of(loop, [v]).body
        assert tags[0].spatial and tags[1].spatial

    def test_three_member_group_single_leader(self):
        u = Array("U", (16, 18))
        loop = nest(
            [Loop("j", 0, 8), Loop("i", 1, 15)],
            [
                ArrayRef("U", (i - 1, j)),
                ArrayRef("U", (i, j)),
                ArrayRef("U", (i + 1, j)),
            ],
        )
        tags = tags_of(loop, [u]).body
        assert [t.spatial for t in tags] == [False, False, True]
        assert all(t.temporal for t in tags)


class TestCallAndIndirect:
    def test_call_clears_all_tags(self):
        x = Array("X", (64,))
        loop = nest(
            [Loop("i", 0, 8), Loop("j", 0, 8)],
            [ArrayRef("X", (j,))],
            has_call=True,
        )
        t = tags_of(loop, [x]).body[0]
        assert not t.temporal and not t.spatial

    def test_indirect_untagged(self):
        x = Array("X", (64,))
        loop = nest(
            [Loop("j", 0, 8)],
            [ArrayRef("X", (j,), indirect=tuple(range(8)))],
        )
        t = tags_of(loop, [x]).body[0]
        assert not t.temporal and not t.spatial

    def test_directive_overrides_indirect(self):
        x = Array("X", (64,))
        loop = nest(
            [Loop("j", 0, 8)],
            [ArrayRef("X", (j,), indirect=tuple(range(8)), temporal=True)],
        )
        assert tags_of(loop, [x]).body[0].temporal

    def test_directive_overrides_call(self):
        x = Array("X", (64,))
        loop = nest(
            [Loop("j", 0, 8)],
            [ArrayRef("X", (j,), temporal=True, spatial=False)],
            has_call=True,
        )
        t = tags_of(loop, [x]).body[0]
        assert t.temporal and not t.spatial

    def test_directive_can_clear(self):
        x = Array("X", (64,))
        loop = nest(
            [Loop("i", 0, 8), Loop("j", 0, 8)],
            [ArrayRef("X", (j,), temporal=False)],
        )
        assert not tags_of(loop, [x]).body[0].temporal


class TestPrePostAnalysis:
    def _mv(self):
        arrays = [Array("Y", (8,)), Array("A", (8, 8)), Array("X", (8,))]
        loop = nest(
            [Loop("j1", 0, 8), Loop("j2", 0, 8)],
            body=[ArrayRef("A", (var("j2"), var("j1"))), ArrayRef("X", (var("j2"),))],
            pre=[ArrayRef("Y", (var("j1"),))],
            post=[ArrayRef("Y", (var("j1"),), is_write=True)],
        )
        return loop, arrays

    def test_pre_post_tagged_at_outer_level(self):
        loop, arrays = self._mv()
        tags = tags_of(loop, arrays)
        # Y(j1): stride 1 in the outer loop -> spatial; read/write group
        # -> temporal.
        assert tags.pre[0].temporal and tags.pre[0].spatial
        assert tags.post[0].temporal and tags.post[0].spatial

    def test_single_loop_pre_untagged(self):
        arrays = [Array("S", (4,)), Array("A", (8,))]
        loop = nest(
            [Loop("j", 0, 8)],
            body=[ArrayRef("A", (j,))],
            pre=[ArrayRef("S", (0,))],
        )
        t = tags_of(loop, arrays).pre[0]
        assert not t.temporal and not t.spatial

    def test_all_property_matches_shape(self):
        loop, arrays = self._mv()
        tags = tags_of(loop, arrays)
        assert isinstance(tags, NestTags)
        assert len(tags.all) == len(loop.all_refs)


class TestAnalyzeProgram:
    def test_scalar_blocks_skipped(self, fig5_program):
        from repro.compiler import ScalarBlock

        block = ScalarBlock((1 << 22,), count=5)
        program = Program(
            "p", list(fig5_program.arrays.values()),
            list(fig5_program.items) + [block],
        )
        result = analyze_program(program)
        assert 0 in result
        assert 1 not in result
