"""The serve subsystem: coalescing, backpressure, HTTP surface, smoke."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.serve import (
    QueueFullError,
    ServeClient,
    ServeConfig,
    ServeHTTPError,
    ServerThread,
    SimulationService,
)

MV_TINY = {"trace": {"benchmark": "MV", "scale": "tiny"}, "config": "standard"}
SPMV_TINY = {"trace": {"benchmark": "SpMV", "scale": "tiny"}, "config": "standard"}


def _run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# Service level (no HTTP): coalescing and backpressure
# ----------------------------------------------------------------------
class TestCoalescing:
    def test_concurrent_identical_cells_simulate_exactly_once(self):
        async def main():
            service = SimulationService(ServeConfig(cache=None, workers=1))
            try:
                return (
                    await asyncio.gather(
                        *(service.submit(MV_TINY) for _ in range(6))
                    ),
                    service.metrics,
                )
            finally:
                service.close()

        responses, metrics = _run(main())
        # The dedup invariant: N concurrent requests, ONE simulation.
        assert metrics.simulations == 1
        assert metrics.served["simulated"] == 1
        assert metrics.served["coalesced"] == 5
        keys = {r["key"] for r in responses}
        assert len(keys) == 1
        payloads = {tuple(sorted(r["result"].items())) for r in responses}
        assert len(payloads) == 1  # every caller saw the same counters

    def test_sequential_repeat_serves_from_hot_tier(self):
        async def main():
            service = SimulationService(ServeConfig(cache=None, workers=1))
            try:
                first = await service.submit(MV_TINY)
                second = await service.submit(MV_TINY)
                return first, second, service.store.stats()
            finally:
                service.close()

        first, second, stats = _run(main())
        assert first["served"] == "simulated"
        assert second["served"] == "hot"
        assert stats["hot_hits"] == 1
        assert first["result"] == second["result"]


class TestBackpressure:
    def test_external_submission_rejected_when_queue_full(self):
        async def main():
            service = SimulationService(
                ServeConfig(cache=None, workers=1, queue_depth=1)
            )
            try:
                return (
                    await asyncio.gather(
                        service.submit(MV_TINY),
                        service.submit(SPMV_TINY),
                        return_exceptions=True,
                    ),
                    service.metrics,
                )
            finally:
                service.close()

        results, metrics = _run(main())
        rejected = [r for r in results if isinstance(r, QueueFullError)]
        served = [r for r in results if isinstance(r, dict)]
        assert len(rejected) == 1 and len(served) == 1
        assert rejected[0].code == "queue-full"
        assert metrics.rejected == 1

    def test_duplicate_cell_coalesces_instead_of_rejecting(self):
        async def main():
            service = SimulationService(
                ServeConfig(cache=None, workers=1, queue_depth=1)
            )
            try:
                return (
                    await asyncio.gather(
                        service.submit(MV_TINY), service.submit(MV_TINY)
                    ),
                    service.metrics,
                )
            finally:
                service.close()

        results, metrics = _run(main())
        assert metrics.rejected == 0
        assert metrics.simulations == 1
        assert {r["served"] for r in results} == {"simulated", "coalesced"}

    def test_batch_cells_wait_for_slots_instead_of_bouncing(self):
        async def main():
            service = SimulationService(
                ServeConfig(cache=None, workers=1, queue_depth=1)
            )
            try:
                sweep = {
                    "traces": [MV_TINY["trace"], SPMV_TINY["trace"]],
                    "configs": ["standard", "soft"],
                }
                return await service.submit_sweep(sweep), service.metrics
            finally:
                service.close()

        result, metrics = _run(main())
        assert result["status"] == "done"
        assert result["done"] == result["total"] == 4
        assert metrics.rejected == 0
        assert metrics.simulations == 4


class TestValidation:
    def test_bad_inputs_raise_config_error_with_stable_code(self):
        from repro.errors import ConfigError

        service = SimulationService(ServeConfig(cache=None))
        bad = [
            {},  # no trace
            {"trace": {"benchmark": "NOPE"}, "config": "standard"},
            {"trace": {"benchmark": "MV", "scale": "huge"}, "config": "standard"},
            {"trace": {"benchmark": "MV", "seed": "x"}, "config": "standard"},
            {"trace": {"benchmark": "MV"}, "config": "no-such-preset"},
            {"trace": {"benchmark": "MV"}, "config": "standard", "engine": "x"},
            {"trace": {"benchmark": "MV"}},  # no config
        ]
        for payload in bad:
            with pytest.raises(ConfigError) as excinfo:
                service.resolve_cell(payload)
            assert excinfo.value.code == "config-error"

    def test_key_is_content_addressed(self):
        service = SimulationService(ServeConfig(cache=None))
        a = service.resolve_cell(MV_TINY)
        b = service.resolve_cell(dict(MV_TINY))
        assert a.key == b.key
        c = service.resolve_cell(
            {"trace": MV_TINY["trace"], "config": "soft"}
        )
        assert c.key != a.key


# ----------------------------------------------------------------------
# HTTP surface, end to end over a real socket
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("serve-cache")
    with ServerThread(
        ServeConfig(port=0, cache=str(cache_dir), workers=1)
    ) as running:
        yield running


@pytest.fixture()
def client(server):
    with ServeClient(server.host, server.port) as c:
        yield c


class TestHTTP:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert "version" in health and "uptime_s" in health

    def test_submit_then_hot_hit(self, client):
        first = client.submit(MV_TINY)
        assert first["served"] in ("simulated", "hot", "disk", "coalesced")
        again = client.submit(MV_TINY)
        assert again["served"] == "hot"  # in-memory, no disk touch
        assert again["result"] == first["result"]
        assert again["key"] == first["key"]

    def test_metrics_shape(self, client):
        client.submit(MV_TINY)
        metrics = client.metrics()
        assert metrics["store"]["hot"]["capacity"] > 0
        assert "p99_ms" in metrics["latency"]
        assert metrics["served"]["hot"] >= 1

    def test_error_codes_are_machine_readable(self, client):
        with pytest.raises(ServeHTTPError) as excinfo:
            client.submit({"trace": {"benchmark": "MV"}, "config": "bogus"})
        assert excinfo.value.status == 400
        assert excinfo.value.code == "config-error"

        with pytest.raises(ServeHTTPError) as excinfo:
            client.result("job-999999-deadbeef")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "unknown-job"

        with pytest.raises(ServeHTTPError) as excinfo:
            client.request("GET", "/no/such/endpoint")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "not-found"

        with pytest.raises(ServeHTTPError) as excinfo:
            client.request("GET", "/submit")
        assert excinfo.value.status == 405
        assert excinfo.value.code == "method-not-allowed"

        status, body = client.request_raw("POST", "/submit", None)
        assert status == 400
        assert body["error"]["code"] == "config-error"

    def test_sweep_wait_returns_grid(self, client):
        out = client.sweep(
            {"traces": [MV_TINY["trace"]], "configs": ["standard", "soft"]}
        )
        assert out["status"] == "done"
        assert out["total"] == 2 and len(out["cells"]) == 2
        assert all("amat" in cell for cell in out["cells"])

    def test_sweep_nowait_polls_to_completion(self, client):
        ticket = client.sweep(
            {
                "traces": [MV_TINY["trace"]],
                "configs": ["standard"],
                "wait": False,
            }
        )
        assert ticket["status"] in ("running", "done")
        job = ticket["job"]
        deadline = time.time() + 30
        while time.time() < deadline:
            status = client.status(job)
            if status["status"] != "running":
                break
            time.sleep(0.02)
        assert status["status"] == "done"
        result = client.result(job)
        assert len(result["cells"]) == 1

    def test_malformed_json_is_bad_request(self, client):
        import http.client as hc

        conn = hc.HTTPConnection(client.host, client.port, timeout=30)
        try:
            conn.request(
                "POST", "/submit", body="{not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            import json as j

            body = j.loads(response.read())
            assert response.status == 400
            assert body["error"]["code"] == "bad-request"
        finally:
            conn.close()

    def test_server_errors_counter_stayed_sane(self, server):
        # The bad-input tests above are counted; no internal errors.
        metrics = server.service.metrics_payload()
        assert metrics["rejected"] == 0


# ----------------------------------------------------------------------
# The end-to-end smoke (what CI runs as `repro serve --smoke`)
# ----------------------------------------------------------------------
class TestSmoke:
    def test_run_smoke_passes(self):
        from repro.serve.smoke import run_smoke

        ok, problems, summary = run_smoke(
            benchmarks=("MV",), configs=("standard", "soft"), scale="tiny"
        )
        assert ok, problems
        assert summary["simulations"] == summary["cells"] == 2
        assert summary["errors"] == 0
