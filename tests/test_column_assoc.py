"""Unit tests for the column-associative cache baseline."""

import pytest

from repro.errors import ConfigError
from repro.sim import (
    CacheGeometry,
    ColumnAssociativeCache,
    MemoryTiming,
    StandardCache,
    simulate,
)

from conftest import make_trace

TIMING = MemoryTiming(latency=10, bus_bytes_per_cycle=16)
PENALTY = 12


def make_cache():
    # 8 sets of 32 B: f2 flips the top index bit (xor 4).
    return ColumnAssociativeCache(CacheGeometry(256, 32, 1), TIMING)


def access(cache, address, now, write=False):
    return cache.access(address, write, temporal=False, spatial=False, now=now)


class TestValidation:
    def test_requires_direct_mapped(self):
        with pytest.raises(ConfigError):
            ColumnAssociativeCache(CacheGeometry(256, 32, 2), TIMING)

    def test_requires_two_sets(self):
        with pytest.raises(ConfigError):
            ColumnAssociativeCache(CacheGeometry(32, 32, 1), TIMING)


class TestBasics:
    def test_first_probe_hit(self):
        c = make_cache()
        access(c, 0, now=0)
        assert access(c, 0, now=100) == 1
        assert c.stats.hits_main == 1

    def test_conflicting_pair_coexists(self):
        # Lines 0 and 256 share set 0; the second rehashes to set 4.
        c = make_cache()
        access(c, 0, now=0)
        access(c, 256, now=100)
        assert c.contains(0) and c.contains(256)

    def test_second_probe_hit_swaps(self):
        c = make_cache()
        access(c, 0, now=0)
        access(c, 256, now=100)     # 0 rehashed to set 4, 256 primary
        cycles = access(c, 0, now=200)  # second probe + swap
        assert cycles == TIMING.assist_hit_time
        assert c.stats.hits_assist == 1 and c.stats.swaps == 1
        # After the swap, 0 hits the first probe again.
        assert access(c, 0, now=300) == 1

    def test_ping_pong_mostly_absorbed(self):
        c = make_cache()
        access(c, 0, now=0)
        access(c, 256, now=100)
        before = c.stats.misses
        for k in range(10):
            access(c, 0 if k % 2 == 0 else 256, now=200 + 100 * k)
        assert c.stats.misses == before  # swaps, not misses

    def test_rehashed_slot_replaced_in_place(self):
        c = make_cache()
        access(c, 128, now=0)      # set 4, first choice
        access(c, 0, now=100)      # set 0
        access(c, 256, now=200)    # set 0 conflict: 0 rehashes to set 4
        # 0's rehash displaced 128.
        assert not c.contains(128)
        assert c.contains(0) and c.contains(256)


class TestWrites:
    def test_dirty_rehash_then_eviction(self):
        c = make_cache()
        access(c, 0, now=0, write=True)
        access(c, 256, now=100)    # dirty 0 rehashes (no writeback yet)
        assert c.stats.writebacks == 0
        access(c, 512, now=200)    # 256 rehashes, dirty 0 evicted
        assert c.stats.writebacks == 1


class TestAgainstStandard:
    def test_conflict_stream_beats_direct_mapped(self):
        # Alternating conflicting lines: column associativity wins big.
        addresses = [0, 256] * 40
        trace = make_trace(addresses, gaps=[50] * len(addresses))
        column = simulate(make_cache(), trace)
        plain = simulate(
            StandardCache(CacheGeometry(256, 32, 1), TIMING), trace
        )
        assert column.amat < plain.amat / 2

    def test_conservation(self):
        trace = make_trace([0, 256, 0, 512, 32, 288, 0], gaps=[50] * 7)
        result = simulate(make_cache(), trace)
        assert result.refs == (
            result.hits_main + result.hits_assist + result.misses
        )

    def test_reset(self):
        c = make_cache()
        access(c, 0, now=0)
        c.reset()
        assert not c.contains(0) and c.stats.refs == 0
