"""Tests for the Fortran-style pretty-printer."""

import pytest

from repro.compiler import (
    Array,
    ArrayRef,
    Loop,
    Program,
    ScalarBlock,
    analyze_nest,
    analyze_program,
    format_nest,
    format_program,
    format_ref,
    nest,
    var,
)

i, j = var("i"), var("j")


def mv_nest():
    return nest(
        [Loop("j1", 0, 4), Loop("j2", 0, 8)],
        body=[ArrayRef("A", (var("j2"), var("j1"))), ArrayRef("X", (var("j2"),))],
        pre=[ArrayRef("Y", (var("j1"),))],
        post=[ArrayRef("Y", (var("j1"),), is_write=True)],
        name="mv",
    )


class TestFormatRef:
    def test_direct(self):
        assert format_ref(ArrayRef("A", (i, j + 1))) == "A(i,1 + j)"

    def test_indirect(self):
        ref = ArrayRef("X", (i,), indirect=(0, 1))
        assert format_ref(ref) == "X(tbl[i])"


class TestFormatNest:
    def test_loop_structure(self):
        out = format_nest(mv_nest())
        assert "DO j1 = 0,3" in out
        assert "DO j2 = 0,7" in out
        assert out.count("ENDDO") == 2

    def test_pre_post_positions(self):
        lines = format_nest(mv_nest()).splitlines()
        body_do = next(k for k, l in enumerate(lines) if "DO j2" in l)
        assert "load  Y(j1)" in lines[body_do - 1]
        assert "store Y(j1)" in lines[-2]

    def test_tags_rendered(self):
        loop = mv_nest()
        arrays = {
            "A": Array("A", (8, 4)), "X": Array("X", (8,)),
            "Y": Array("Y", (4,)),
        }
        out = format_nest(loop, analyze_nest(loop, arrays))
        assert "! T=0 S=1" in out  # A(j2,j1)
        assert "! T=1 S=1" in out  # X(j2)

    def test_call_marker(self):
        loop = nest(
            [Loop("i", 0, 4)], [ArrayRef("X", (i,))], has_call=True
        )
        assert "CALL" in format_nest(loop)

    def test_opaque_marker(self):
        loop = nest(
            [Loop("t", 0, 4, opaque=True), Loop("i", 0, 4)],
            [ArrayRef("X", (i,))],
        )
        assert "opaque" in format_nest(loop)

    def test_step_rendered(self):
        loop = nest([Loop("i", 0, 16, step=4)], [ArrayRef("X", (i,))])
        assert "DO i = 0,15,4" in format_nest(loop)

    def test_aliases_rendered(self):
        loop = nest(
            [Loop("k", 0, 4)],
            [ArrayRef("X", (var("kk"),))],
            aliases={"kk": var("k") * 2},
        )
        assert "aliases: kk = 2*k" in format_nest(loop)


class TestFormatProgram:
    def test_includes_scalar_blocks(self):
        arrays = [Array("X", (8,))]
        loop = nest([Loop("i", 0, 8)], [ArrayRef("X", (i,))], name="sweep")
        block = ScalarBlock((1 << 20,), count=42, name="scalars")
        program = Program("p", arrays, [loop, block])
        out = format_program(program, analyze_program(program))
        assert "nest sweep" in out
        assert "42 untagged scalar references" in out
