"""Tests for cross-benchmark metric aggregation."""

import math

import pytest

from repro.errors import ConfigError
from repro.metrics import (
    amat_improvement,
    geometric_mean,
    miss_reduction,
    suite_summary,
    traffic_ratio,
)
from repro.sim import SimResult


def result(cycles=300, misses=20, words=100):
    return SimResult(
        cache="c", trace="t", refs=100, cycles=cycles,
        hits_main=100 - misses, misses=misses, words_fetched=words,
    )


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)

    def test_single(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            geometric_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigError):
            geometric_mean([1.0, 0.0])


class TestComparisons:
    def test_amat_improvement(self):
        assert amat_improvement(result(400), result(300)) == pytest.approx(0.25)

    def test_amat_improvement_zero_baseline_rejected(self):
        with pytest.raises(ConfigError):
            amat_improvement(result(cycles=0), result(300))

    def test_miss_reduction(self):
        assert miss_reduction(result(misses=40), result(misses=10)) == 0.75

    def test_miss_reduction_zero_base(self):
        assert miss_reduction(result(misses=0), result(misses=0)) == 0.0

    def test_traffic_ratio(self):
        assert traffic_ratio(result(words=100), result(words=150)) == 1.5

    def test_traffic_ratio_zero_base_rejected(self):
        with pytest.raises(ConfigError):
            traffic_ratio(result(words=0), result(words=10))


class TestSuiteSummary:
    def test_summary_rows(self):
        grid = {
            "b1": {"base": result(400, 40), "soft": result(200, 10)},
            "b2": {"base": result(300, 30), "soft": result(300, 30)},
        }
        summary = suite_summary(grid, "base", "soft")
        assert summary["b1"]["amat_improvement"] == pytest.approx(0.5)
        assert summary["b2"]["amat_improvement"] == 0.0
        assert "geomean" in summary
        assert 0 < summary["geomean"]["amat_improvement"] < 0.5
        assert math.isnan(summary["geomean"]["miss_reduction"])

    def test_empty_grid_rejected(self):
        # No benchmarks means no speedups — the geometric mean underneath
        # must refuse rather than return a silent identity value.
        with pytest.raises(ConfigError):
            suite_summary({}, "base", "soft")

    def test_zero_amat_candidate_rejected(self):
        grid = {"b1": {"base": result(400), "soft": result(cycles=0)}}
        with pytest.raises(ConfigError):
            suite_summary(grid, "base", "soft")
