"""Tests for cross-benchmark metric aggregation."""

import math

import pytest

from repro.errors import ConfigError
from repro.metrics import (
    amat_improvement,
    geomean,
    geometric_mean,
    miss_reduction,
    suite_summary,
    traffic_ratio,
)
from repro.sim import SimResult


def result(cycles=300, misses=20, words=100):
    return SimResult(
        cache="c", trace="t", refs=100, cycles=cycles,
        hits_main=100 - misses, misses=misses, words_fetched=words,
    )


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)

    def test_single(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            geometric_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigError):
            geometric_mean([1.0, 0.0])


class TestLenientGeomean:
    """Corpus summaries aggregate degenerate cells: warn, never raise."""

    def test_matches_strict_on_good_input(self):
        assert geomean([2, 8]) == pytest.approx(geometric_mean([2, 8]))

    def test_empty_warns_and_returns_none(self):
        with pytest.warns(RuntimeWarning, match="empty"):
            assert geomean([]) is None

    def test_zero_warns_and_returns_none(self):
        with pytest.warns(RuntimeWarning, match="non-positive"):
            assert geomean([1.0, 0.0]) is None

    def test_negative_and_nonfinite_warn(self):
        with pytest.warns(RuntimeWarning):
            assert geomean([1.0, -2.0]) is None
        with pytest.warns(RuntimeWarning):
            assert geomean([1.0, math.inf]) is None
        with pytest.warns(RuntimeWarning):
            assert geomean([1.0, math.nan]) is None

    def test_none_values_are_dropped(self):
        assert geomean([2.0, None, 8.0]) == pytest.approx(4.0)
        with pytest.warns(RuntimeWarning, match="empty"):
            assert geomean([None, None]) is None

    def test_accepts_generators(self):
        assert geomean(v for v in [3.0]) == pytest.approx(3.0)


class TestComparisons:
    def test_amat_improvement(self):
        assert amat_improvement(result(400), result(300)) == pytest.approx(0.25)

    def test_amat_improvement_zero_baseline_rejected(self):
        with pytest.raises(ConfigError):
            amat_improvement(result(cycles=0), result(300))

    def test_miss_reduction(self):
        assert miss_reduction(result(misses=40), result(misses=10)) == 0.75

    def test_miss_reduction_zero_base(self):
        assert miss_reduction(result(misses=0), result(misses=0)) == 0.0

    def test_traffic_ratio(self):
        assert traffic_ratio(result(words=100), result(words=150)) == 1.5

    def test_traffic_ratio_zero_base_rejected(self):
        with pytest.raises(ConfigError):
            traffic_ratio(result(words=0), result(words=10))


class TestSuiteSummary:
    def test_summary_rows(self):
        grid = {
            "b1": {"base": result(400, 40), "soft": result(200, 10)},
            "b2": {"base": result(300, 30), "soft": result(300, 30)},
        }
        summary = suite_summary(grid, "base", "soft")
        assert summary["b1"]["amat_improvement"] == pytest.approx(0.5)
        assert summary["b2"]["amat_improvement"] == 0.0
        assert "geomean" in summary
        assert 0 < summary["geomean"]["amat_improvement"] < 0.5
        assert math.isnan(summary["geomean"]["miss_reduction"])

    def test_empty_grid_rejected(self):
        # No benchmarks means no speedups — the geometric mean underneath
        # must refuse rather than return a silent identity value.
        with pytest.raises(ConfigError):
            suite_summary({}, "base", "soft")

    def test_zero_amat_candidate_rejected(self):
        grid = {"b1": {"base": result(400), "soft": result(cycles=0)}}
        with pytest.raises(ConfigError):
            suite_summary(grid, "base", "soft")
