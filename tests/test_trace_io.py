"""Tests for trace persistence."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.memtrace import load_trace, save_trace
from repro.memtrace.io import FORMAT_VERSION

from conftest import make_trace


class TestRoundTrip:
    def test_all_columns(self, tmp_path):
        trace = make_trace(
            [0, 8, 16],
            is_write=[False, True, False],
            temporal=[True, False, False],
            spatial=[False, True, False],
            gaps=[1, 5, 2],
            name="roundtrip",
            ref_ids=[0, 1, 0],
        )
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == "roundtrip"
        assert loaded.addresses.tolist() == [0, 8, 16]
        assert loaded.is_write.tolist() == [False, True, False]
        assert loaded.temporal.tolist() == [True, False, False]
        assert loaded.spatial.tolist() == [False, True, False]
        assert loaded.gaps.tolist() == [1, 5, 2]
        assert loaded.ref_ids.tolist() == [0, 1, 0]

    def test_without_ref_ids(self, tmp_path):
        from repro.memtrace import Trace

        trace = Trace(
            np.array([0, 8]), np.array([False, False]),
            np.array([False, False]), np.array([False, False]),
            np.array([1, 1]), name="bare",
        )
        path = tmp_path / "bare.npz"
        save_trace(trace, path)
        assert load_trace(path).ref_ids is None

    def test_generated_trace_roundtrip(self, tmp_path, mv_tiny_trace):
        path = tmp_path / "mv.npz"
        save_trace(mv_tiny_trace, path)
        loaded = load_trace(path)
        assert (loaded.addresses == mv_tiny_trace.addresses).all()
        assert (loaded.gaps == mv_tiny_trace.gaps).all()

    def test_simulation_identical_after_reload(self, tmp_path, mv_tiny_trace):
        from repro.core import presets
        from repro.sim import simulate

        path = tmp_path / "mv.npz"
        save_trace(mv_tiny_trace, path)
        a = simulate(presets.soft(), mv_tiny_trace)
        b = simulate(presets.soft(), load_trace(path))
        assert a.cycles == b.cycles and a.misses == b.misses


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(tmp_path / "nope.npz")

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "old.npz"
        np.savez_compressed(
            path,
            version=np.int64(FORMAT_VERSION + 1),
            name=np.str_("x"),
            addresses=np.array([0]),
            is_write=np.array([False]),
            temporal=np.array([False]),
            spatial=np.array([False]),
            gaps=np.array([1]),
        )
        with pytest.raises(TraceError):
            load_trace(path)

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"not an npz at all")
        with pytest.raises(TraceError):
            load_trace(path)

    def test_truncated_archive(self, tmp_path):
        path = tmp_path / "truncated.npz"
        save_trace(make_trace(list(range(0, 8000, 8))), path)
        whole = path.read_bytes()
        path.write_bytes(whole[: len(whole) // 2])
        with pytest.raises(TraceError):
            load_trace(path)

    def test_missing_column(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez_compressed(
            path,
            version=np.int64(FORMAT_VERSION),
            name=np.str_("partial"),
            addresses=np.array([0]),
        )
        with pytest.raises(TraceError):
            load_trace(path)

    def test_fingerprint_mismatch(self, tmp_path):
        trace = make_trace([0, 8, 16], name="tampered")
        path = tmp_path / "tampered.npz"
        np.savez_compressed(
            path,
            version=np.int64(FORMAT_VERSION),
            fingerprint=np.str_("0" * 64),
            name=np.str_(trace.name),
            addresses=trace.addresses,
            is_write=trace.is_write,
            temporal=trace.temporal,
            spatial=trace.spatial,
            gaps=trace.gaps,
        )
        with pytest.raises(TraceError, match="fingerprint"):
            load_trace(path)


class TestStoreDispatch:
    def test_load_trace_reads_v2_stores(self, tmp_path, mv_tiny_trace):
        from repro.memtrace import TraceStore

        root = tmp_path / "mv.store"
        TraceStore.save(mv_tiny_trace, root, chunk_refs=100)
        loaded = load_trace(root)
        assert loaded.fingerprint() == mv_tiny_trace.fingerprint()
