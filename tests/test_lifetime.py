"""Tests for the cache-line lifetime analysis."""

import pytest

from repro.memtrace.lifetime import lifetime_profile, line_lifetimes
from repro.sim import CacheGeometry

from conftest import make_trace

TINY = CacheGeometry(128, 32, 1)  # 4 sets


class TestLineLifetimes:
    def test_no_evictions(self):
        t = make_trace([0, 32, 64, 96])
        assert line_lifetimes(t, TINY) == []

    def test_conflict_eviction_lifetime(self):
        # Line 0 filled at ref 0, evicted by 128 at ref 3.
        t = make_trace([0, 32, 64, 128])
        assert line_lifetimes(t, TINY) == [3]

    def test_touch_extends_nothing_but_lru(self):
        # Lifetime is fill-to-eviction regardless of touches in between.
        t = make_trace([0, 0, 0, 128])
        assert line_lifetimes(t, TINY) == [3]

    def test_set_associative(self):
        fa = CacheGeometry(64, 32, 2)  # one set, two ways
        t = make_trace([0, 32, 64])  # 64 evicts LRU line 0 at ref 2
        assert line_lifetimes(t, fa) == [2]

    def test_multiple_generations(self):
        t = make_trace([0, 128, 0, 128])
        # 0 evicted at ref 1 (lifetime 1), 128 at ref 2 (1), 0 at ref 3 (1).
        assert line_lifetimes(t, TINY) == [1, 1, 1]


class TestProfile:
    def test_summary(self):
        t = make_trace([0, 128, 0, 128, 0])
        p = lifetime_profile(t, TINY)
        assert p.evictions == 4
        assert p.mean == 1.0
        assert p.median == 1.0

    def test_empty(self):
        p = lifetime_profile(make_trace([]), TINY)
        assert p.evictions == 0 and p.mean == 0.0

    def test_paper_estimate_order_of_magnitude(self):
        # The paper: ~2500 references for an 8 KB cache.  Our suite's
        # pooled mean lifetime must sit in the same decade.
        from repro.workloads import suite_traces

        pooled = []
        for trace in suite_traces("test").values():
            pooled.extend(line_lifetimes(trace))
        mean = sum(pooled) / len(pooled)
        assert 250 < mean < 25_000
