"""Analytic oracle: closed-form predictions as a third correctness leg."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.metrics.analytic import (
    DISTRIBUTIONS,
    BlockedLoopDistribution,
    IRMDistribution,
    Interval,
    OracleMismatch,
    SequentialScanDistribution,
    battery_distributions,
    format_oracle_rows,
    make_distribution,
    oracle_check,
    verify_oracle,
)
from repro.presets import spec
from repro.sim.driver import simulate
from repro.sim.engine import cross_validate


def small_battery():
    return {
        "irm": IRMDistribution(n_lines=512, refs=6000, seed=0),
        "scan": SequentialScanDistribution(array_bytes=32 * 1024, passes=3),
        "blocked": BlockedLoopDistribution(
            block_bytes=4096, blocks=4, repeats=3
        ),
    }


class TestDistributions:
    def test_traces_are_read_only_untagged_unit_gap(self):
        for dist in small_battery().values():
            trace = dist.trace()
            assert len(trace) == dist.refs
            assert not trace.is_write.any()
            assert not trace.temporal.any()
            assert not trace.spatial.any()
            assert (trace.gaps == 1).all()

    def test_generation_is_deterministic(self):
        a = IRMDistribution(n_lines=64, refs=500, seed=3).trace()
        b = IRMDistribution(n_lines=64, refs=500, seed=3).trace()
        assert a.fingerprint() == b.fingerprint()
        c = IRMDistribution(n_lines=64, refs=500, seed=4).trace()
        assert a.fingerprint() != c.fingerprint()

    def test_registry_round_trip(self):
        assert set(DISTRIBUTIONS) == {"irm", "scan", "blocked"}
        dist = make_distribution("irm", n_lines=32, refs=100, seed=1)
        assert isinstance(dist, IRMDistribution)
        assert dist.params()["n_lines"] == 32

    def test_registry_rejects_unknown(self):
        with pytest.raises(ConfigError, match="unknown distribution"):
            make_distribution("zipf")
        with pytest.raises(ConfigError, match="bad parameters"):
            make_distribution("irm", wrong_param=1)

    def test_battery_defaults_cover_all_kinds(self):
        battery = battery_distributions(refs=2000)
        assert set(battery) == {"irm", "scan", "blocked"}


class TestInterval:
    def test_exact_and_band(self):
        assert Interval.exact(3).contains(3)
        assert not Interval.exact(3).contains(4)
        band = Interval(1.0, 2.0)
        assert band.contains(1.5)
        assert not band.contains(2.5)
        assert not band.is_exact
        assert Interval.exact(3).is_exact


class TestPredictions:
    @pytest.mark.parametrize("preset", ["standard", "soft"])
    @pytest.mark.parametrize("kind", ["scan", "blocked"])
    def test_deterministic_distributions_predict_exactly(self, preset, kind):
        dist = small_battery()[kind]
        result = simulate(spec(preset).build(), dist.trace(), engine="reference")
        checked = oracle_check(preset, dist, result)
        observed, interval = checked["misses"]
        assert interval.is_exact
        assert observed == interval.lo

    @pytest.mark.parametrize("preset", ["standard", "soft"])
    def test_irm_lands_inside_the_band(self, preset):
        dist = small_battery()["irm"]
        result = simulate(spec(preset).build(), dist.trace(), engine="reference")
        checked = oracle_check(preset, dist, result)
        observed, interval = checked["misses"]
        assert not interval.is_exact
        assert interval.lo < observed < interval.hi

    def test_line_utilization_and_amat_are_checked(self):
        dist = small_battery()["scan"]
        result = simulate(spec("standard").build(), dist.trace(), engine="fast")
        checked = oracle_check("standard", dist, result)
        for metric in ("line_utilization", "amat", "miss_ratio", "traffic"):
            observed, interval = checked[metric]
            assert interval.contains(observed)

    def test_unsupported_model_refused(self):
        dist = small_battery()["scan"]
        with pytest.raises(ConfigError, match="oracle"):
            dist.predict(spec("soft-prefetch").build())
        with pytest.raises(ConfigError, match="oracle"):
            dist.predict(spec("bypass").build())

    def test_assisted_scan_needs_flush_regime(self):
        # An array barely larger than the cache sits between "fits" and
        # "provably flushes the bounce-back buffer": refuse, don't guess.
        small = SequentialScanDistribution(array_bytes=9 * 1024, passes=2)
        with pytest.raises(ConfigError, match="distinct_lines"):
            small.predict(spec("soft").build())

    def test_blocked_requires_fitting_blocks(self):
        big = BlockedLoopDistribution(
            block_bytes=16 * 1024, blocks=2, repeats=2
        )
        with pytest.raises(ConfigError, match="fit"):
            big.predict(spec("soft").build())


class TestPerturbationDetection:
    """An intentionally corrupted counter must not survive the oracle."""

    def _result(self, dist, preset="standard"):
        return simulate(spec(preset).build(), dist.trace(), engine="fast")

    def test_identity_violation_caught(self):
        dist = small_battery()["scan"]
        good = self._result(dist)
        bad = dataclasses.replace(good, misses=good.misses + 1)
        with pytest.raises(OracleMismatch, match="identity"):
            oracle_check("standard", dist, bad)

    def test_coherent_perturbation_caught_exactly(self):
        # Shift one hit to a miss with all identities kept consistent:
        # only the closed-form interval can notice.
        dist = small_battery()["scan"]
        good = self._result(dist)
        wpl = 32 // 8
        bad = dataclasses.replace(
            good,
            misses=good.misses + 1,
            hits_main=good.hits_main - 1,
            lines_fetched=good.lines_fetched + 1,
            words_fetched=good.words_fetched + wpl,
            cycles=good.cycles + 21,
        )
        with pytest.raises(OracleMismatch, match="misses"):
            oracle_check("standard", dist, bad)

    def test_irm_band_catches_gross_drift(self):
        dist = small_battery()["irm"]
        good = self._result(dist)
        drift = int(good.misses * 0.5)
        bad = dataclasses.replace(
            good,
            misses=good.misses + drift,
            hits_main=good.hits_main - drift,
            lines_fetched=good.lines_fetched + drift,
            words_fetched=good.words_fetched + drift * 4,
            cycles=good.cycles + drift * 21,
        )
        with pytest.raises(OracleMismatch):
            oracle_check("standard", dist, bad)

    def test_error_has_stable_code(self):
        dist = small_battery()["scan"]
        good = self._result(dist)
        bad = dataclasses.replace(good, writebacks=5)
        with pytest.raises(OracleMismatch) as excinfo:
            oracle_check("standard", dist, bad)
        assert excinfo.value.code == "oracle-mismatch"


class TestCrossValidateOracleLeg:
    def test_oracle_joins_cross_validation(self):
        dist = small_battery()["blocked"]
        result = cross_validate(spec("standard").build, oracle=dist)
        assert result.refs == dist.refs

    def test_trace_defaults_to_oracle_trace(self):
        with pytest.raises(ConfigError, match="trace or an oracle"):
            cross_validate(spec("standard").build)

    def test_oracle_leg_fails_on_unsupported_regime(self):
        # Engines agree on this cell, but the assisted scan oracle has
        # no provable regime for an array this close to the cache size —
        # the analytic leg must surface that instead of guessing.
        small = SequentialScanDistribution(array_bytes=9 * 1024, passes=2)
        with pytest.raises(ConfigError, match="distinct_lines"):
            cross_validate(spec("soft").build, oracle=small)


class TestVerifyOracleBattery:
    def test_full_battery_every_tier(self):
        rows = verify_oracle(dists=small_battery(), refs=6000)
        assert all(row["ok"] for row in rows), [
            row for row in rows if not row["ok"]
        ]
        by_tier = {}
        for row in rows:
            by_tier.setdefault(row["tier"], []).append(row)
        # Every tier appears; every tier has at least one non-skipped run
        # except native/pipelined which legitimately refuse assisted
        # configs (and native may lack a toolchain entirely).
        assert set(by_tier) == {
            "reference", "fast", "fast_soft", "native", "pipelined",
            "streamed",
        }
        for tier in ("reference", "fast", "fast_soft", "streamed"):
            assert any(r["skipped"] is None for r in by_tier[tier]), tier
        report = format_oracle_rows(rows)
        assert "within analytic bounds" in report

    def test_unknown_tier_rejected(self):
        with pytest.raises(ConfigError, match="unknown oracle tiers"):
            verify_oracle(dists=small_battery(), tiers=("reference", "warp"))

    def test_failures_are_rows_not_exceptions(self, monkeypatch):
        from repro.metrics import analytic

        real = analytic.oracle_check

        def sabotage(spec_or_model, dist, result, tol=1.0):
            bad = dataclasses.replace(result, writebacks=7)
            return real(spec_or_model, dist, bad, tol=tol)

        monkeypatch.setattr(analytic, "oracle_check", sabotage)
        rows = verify_oracle(
            dists={"scan": small_battery()["scan"]},
            configs=["standard"],
            tiers=("reference",),
        )
        assert any(not row["ok"] for row in rows)
        assert all("error" in row for row in rows if not row["ok"])
