"""Tests for cache geometry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.sim import CacheGeometry


class TestValidation:
    def test_paper_standard(self):
        g = CacheGeometry(8 * 1024, 32, 1)
        assert g.n_sets == 256
        assert g.n_lines == 256

    def test_non_pow2_line_rejected(self):
        with pytest.raises(ConfigError):
            CacheGeometry(8192, 48)

    def test_non_pow2_size_rejected(self):
        with pytest.raises(ConfigError):
            CacheGeometry(8000, 32)

    def test_zero_ways_rejected(self):
        with pytest.raises(ConfigError):
            CacheGeometry(8192, 32, 0)

    def test_ways_must_divide(self):
        with pytest.raises(ConfigError):
            CacheGeometry(128, 32, 3)

    def test_fully_associative_single_set(self):
        g = CacheGeometry(256, 32, 8)
        assert g.n_sets == 1


class TestMapping:
    def test_line_address(self):
        g = CacheGeometry(8192, 32)
        assert g.line_address(0) == 0
        assert g.line_address(31) == 0
        assert g.line_address(32) == 1

    def test_set_wraparound(self):
        g = CacheGeometry(128, 32)  # 4 sets
        assert g.set_of(0) == g.set_of(128)
        assert g.set_of(32) == 1

    def test_str(self):
        assert "direct-mapped" in str(CacheGeometry(8192, 32, 1))
        assert "2-way" in str(CacheGeometry(8192, 32, 2))

    @given(st.integers(min_value=0, max_value=1 << 40))
    def test_same_line_same_set(self, address):
        g = CacheGeometry(8192, 32, 2)
        in_line = address - (address % 32)
        assert g.set_of(address) == g.set_of(in_line)

    @given(
        st.integers(min_value=0, max_value=1 << 30),
        st.sampled_from([1, 2, 4, 8]),
    )
    def test_set_index_in_range(self, address, ways):
        g = CacheGeometry(8192, 32, ways)
        assert 0 <= g.set_of(address) < g.n_sets
