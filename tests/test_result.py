"""Tests for simulation result records and derived metrics."""

import pytest

from repro.sim import SimResult


def result(**kwargs):
    base = dict(refs=100, cycles=300, hits_main=70, hits_assist=10, misses=20)
    base.update(kwargs)
    return SimResult(cache="c", trace="t", **base)


class TestDerivedMetrics:
    def test_amat(self):
        assert result().amat == 3.0

    def test_miss_and_hit_ratio(self):
        r = result()
        assert r.miss_ratio == 0.2
        assert r.hit_ratio == 0.8

    def test_traffic(self):
        r = result(words_fetched=80)
        assert r.traffic == 0.8

    def test_hit_repartition(self):
        r = result()
        assert r.main_hit_fraction == pytest.approx(70 / 80)
        assert r.assist_hit_fraction == pytest.approx(10 / 80)

    def test_empty_result_safe(self):
        r = SimResult()
        assert r.amat == 0.0 and r.miss_ratio == 0.0 and r.traffic == 0.0
        assert r.main_hit_fraction == 0.0


class TestComparisons:
    def test_misses_removed(self):
        base = result(misses=40)
        better = result(misses=10)
        assert better.misses_removed_vs(base) == 75.0

    def test_misses_removed_zero_base(self):
        assert result().misses_removed_vs(result(misses=0)) == 0.0

    def test_amat_gain(self):
        base = result(cycles=500)
        faster = result(cycles=300)
        assert faster.amat_gain_vs(base) == pytest.approx(2.0)


class TestConsistency:
    def test_check_passes_on_valid(self):
        result(words_fetched=30, lines_fetched=20).check()

    def test_check_rejects_unbalanced_hits(self):
        with pytest.raises(AssertionError):
            result(hits_main=0).check()

    def test_check_rejects_words_below_lines(self):
        with pytest.raises(AssertionError):
            result(words_fetched=5, lines_fetched=10).check()

    def test_check_rejects_subcycle_accesses(self):
        with pytest.raises(AssertionError):
            result(cycles=50).check()


class TestExport:
    def test_as_dict_has_counters_and_derived(self):
        d = result(words_fetched=80).as_dict()
        assert d["refs"] == 100
        assert d["amat"] == 3.0
        assert d["traffic"] == 0.8

    def test_str_mentions_names(self):
        s = str(result())
        assert "c" in s and "t" in s
