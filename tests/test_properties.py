"""Property-based tests of simulator invariants (hypothesis).

The central one is cross-validation: a software-assisted cache with all
mechanisms disabled must be cycle-for-cycle identical to the
independently implemented StandardCache, on arbitrary reference streams.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SoftCacheConfig, SoftwareAssistedCache
from repro.sim import CacheGeometry, MemoryTiming, StandardCache, simulate

from conftest import make_trace

TIMING = MemoryTiming(latency=10, bus_bytes_per_cycle=16)

# Address pool spanning 16 lines over a 4-set cache: plenty of conflicts.
addresses = st.integers(min_value=0, max_value=63).map(lambda k: k * 8)
flags = st.booleans()

reference_streams = st.lists(
    st.tuples(addresses, flags, flags, flags),
    min_size=1,
    max_size=120,
)


def build_trace(stream):
    return make_trace(
        [a for a, _, _, _ in stream],
        is_write=[w for _, w, _, _ in stream],
        temporal=[t for _, _, t, _ in stream],
        spatial=[s for _, _, _, s in stream],
        gaps=[3] * len(stream),
    )


def soft_cache(**overrides):
    config = dict(
        size_bytes=128, line_size=32, ways=1,
        bounce_back_lines=2, virtual_line_size=64, timing=TIMING,
    )
    config.update(overrides)
    return SoftwareAssistedCache(SoftCacheConfig(**config))


class TestStandardEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(reference_streams)
    def test_disabled_soft_equals_standard(self, stream):
        trace = build_trace(stream)
        plain = StandardCache(CacheGeometry(128, 32, 1), TIMING)
        disabled = soft_cache(
            bounce_back_lines=0, virtual_line_size=None, use_temporal=False
        )
        a = simulate(plain, trace)
        b = simulate(disabled, trace)
        assert a.cycles == b.cycles
        assert a.misses == b.misses
        assert a.words_fetched == b.words_fetched
        assert a.writebacks == b.writebacks

    @settings(max_examples=100, deadline=None)
    @given(reference_streams, st.sampled_from([1, 2, 4]))
    def test_equivalence_across_associativity(self, stream, ways):
        trace = build_trace(stream)
        plain = StandardCache(CacheGeometry(128 * ways, 32, ways), TIMING)
        disabled = soft_cache(
            size_bytes=128 * ways, ways=ways,
            bounce_back_lines=0, virtual_line_size=None, use_temporal=False,
        )
        a = simulate(plain, trace)
        b = simulate(disabled, trace)
        assert a.cycles == b.cycles and a.misses == b.misses


class TestInvariants:
    @settings(max_examples=150, deadline=None)
    @given(reference_streams)
    def test_exclusivity_and_conservation(self, stream):
        cache = soft_cache()
        trace = build_trace(stream)
        result = simulate(cache, trace)
        cache.check_exclusive()
        assert result.refs == len(stream)
        assert result.refs == (
            result.hits_main + result.hits_assist + result.misses
        )
        assert result.cycles >= result.refs

    @settings(max_examples=100, deadline=None)
    @given(reference_streams)
    def test_amat_at_least_one(self, stream):
        result = simulate(soft_cache(), build_trace(stream))
        assert result.amat >= 1.0

    @settings(max_examples=100, deadline=None)
    @given(reference_streams)
    def test_untagged_trace_identical_to_cleared(self, stream):
        # Clearing tags must be equivalent to never having them.
        trace = build_trace(stream)
        cleared = trace.with_tags_cleared()
        a = simulate(soft_cache(), cleared)
        b = simulate(soft_cache(), cleared)
        assert a.cycles == b.cycles  # determinism

    @settings(max_examples=100, deadline=None)
    @given(reference_streams)
    def test_victim_mode_never_misses_more_than_standard(self, stream):
        # A victim buffer can only recover lines, never lose them.
        trace = build_trace(stream).with_tags_cleared()
        plain = soft_cache(
            bounce_back_lines=0, virtual_line_size=None, use_temporal=False
        )
        victim = soft_cache(virtual_line_size=None, use_temporal=False)
        a = simulate(plain, trace)
        b = simulate(victim, trace)
        assert b.misses <= a.misses

    @settings(max_examples=100, deadline=None)
    @given(reference_streams)
    def test_determinism(self, stream):
        trace = build_trace(stream)
        a = simulate(soft_cache(), trace)
        b = simulate(soft_cache(), trace)
        assert a.cycles == b.cycles
        assert a.as_dict() == b.as_dict()

    @settings(max_examples=100, deadline=None)
    @given(reference_streams)
    def test_traffic_accounting(self, stream):
        result = simulate(soft_cache(), build_trace(stream))
        # Every fetched line is 4 words (32 B / 8 B).
        assert result.words_fetched == 4 * result.lines_fetched


class TestPrefetchInvariants:
    @settings(max_examples=100, deadline=None)
    @given(reference_streams)
    def test_prefetch_keeps_conservation(self, stream):
        cache = soft_cache(bounce_back_lines=4, prefetch="software")
        result = simulate(cache, build_trace(stream))
        cache.check_exclusive()
        assert result.refs == (
            result.hits_main + result.hits_assist + result.misses
        )
        assert result.prefetch_hits <= result.prefetches_issued
