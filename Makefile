# Developer entry points.  The tier-1 gate is `make test`.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-serial lint bench bench-sim figures clean-cache

# Tier-1: the unit/integration/property suite.  REPRO_JOBS=2 keeps the
# process-pool path (and spec pickling) exercised on every run;
# -p no:cacheprovider avoids .pytest_cache churn in CI.
test:
	REPRO_JOBS=2 $(PYTHON) -m pytest -x -q -p no:cacheprovider

# The strict serial path (bit-identical reference behaviour).
test-serial:
	REPRO_JOBS=1 $(PYTHON) -m pytest -x -q -p no:cacheprovider

# Lint ratchet (see [tool.ruff] in pyproject.toml): full ruleset over
# src/repro/harness/, grandfathered ignores elsewhere.
lint:
	$(PYTHON) -m ruff check src tests benchmarks

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Engine throughput benchmark (refs/second per engine, fast-vs-reference
# speedups).  Writes BENCH_sim.json; compare against the committed copy
# to catch perf regressions.
bench-sim:
	$(PYTHON) -m repro bench --out BENCH_sim.json

figures:
	$(PYTHON) -m repro run all

clean-cache:
	$(PYTHON) -m repro cache clear
