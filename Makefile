# Developer entry points.  The tier-1 gate is `make test`.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-serial lint bench bench-sim bench-native bench-serve native serve-smoke trace-demo analyze-demo figures clean-cache

# Tier-1: the unit/integration/property suite.  REPRO_JOBS=2 keeps the
# process-pool path (and spec pickling) exercised on every run;
# -p no:cacheprovider avoids .pytest_cache churn in CI.
test:
	REPRO_JOBS=2 $(PYTHON) -m pytest -x -q -p no:cacheprovider

# The strict serial path (bit-identical reference behaviour).
test-serial:
	REPRO_JOBS=1 $(PYTHON) -m pytest -x -q -p no:cacheprovider

# Lint ratchet (see [tool.ruff] in pyproject.toml): full ruleset over
# src/repro/harness/, grandfathered ignores elsewhere.
lint:
	$(PYTHON) -m ruff check src tests benchmarks

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Engine throughput benchmark (refs/second per engine, fast-vs-reference
# speedups).  Writes BENCH_sim.json; compare against the committed copy
# to catch perf regressions.
bench-sim:
	$(PYTHON) -m repro bench --out BENCH_sim.json

# Force-build the native compiled kernels and print the cached .so
# path (a no-op beyond the print when the cache is already warm).
native:
	$(PYTHON) -m repro.sim.native

# Native-tier throughput: reference vs fast vs compiled-C on the
# standard configs, plus the native refusal matrix and toolchain.
bench-native:
	$(PYTHON) -m repro bench --scenario native --out BENCH_native.json

# Serving-layer closed-loop benchmark (p50/p99 latency, hit-serving
# throughput at a ~95% hit mix).  Writes BENCH_serve.json — its own
# artifact, separate from BENCH_sim.json.  See docs/serve.md.
bench-serve:
	$(PYTHON) -m repro bench --scenario serve --serve-out BENCH_serve.json

# End-to-end self-test of `repro serve`: start a server, submit a
# small sweep twice, assert the second pass is all hot/disk hits with
# zero re-simulations.
serve-smoke:
	$(PYTHON) -m repro serve --smoke

# External-trace pipeline end to end: import the bundled dinero sample
# into a chunked v2 store (with dynamic tag annotation), inspect it,
# and simulate it out-of-core on the standard and soft configurations.
# See docs/traces.md.
trace-demo:
	$(PYTHON) -m repro trace import examples/sample.din \
		--out /tmp/repro-sample.store --annotate --chunk-refs 256
	$(PYTHON) -m repro trace info /tmp/repro-sample.store
	$(PYTHON) -m repro simulate --trace /tmp/repro-sample.store \
		--config standard --cross-validate
	$(PYTHON) -m repro simulate --trace /tmp/repro-sample.store \
		--config soft --cross-validate
	rm -rf /tmp/repro-sample.store

# Telemetry pipeline end to end on the bundled dinero sample: ingest
# (implicit, with annotated tags), probe, classify and export.  See
# docs/telemetry.md.
analyze-demo:
	$(PYTHON) -m repro analyze --trace examples/sample.din \
		--config soft --window 256 --out /tmp/repro-analyze
	ls /tmp/repro-analyze
	rm -rf /tmp/repro-analyze

figures:
	$(PYTHON) -m repro run all

clean-cache:
	$(PYTHON) -m repro cache clear
