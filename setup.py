"""Setup shim for environments whose setuptools cannot do PEP 660 editable
installs (no `wheel` package available offline).  All real metadata lives
in pyproject.toml; install with:

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
