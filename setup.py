"""Setup shim for environments whose setuptools cannot do PEP 660 editable
installs (no `wheel` package available offline).  All real metadata lives
in pyproject.toml; install with:

    pip install -e . --no-build-isolation --no-use-pep517

As a convenience, building the package also tries to pre-compile the
native simulation kernels (repro.sim.native) so the first simulation of
an installed copy does not pay the compile.  The attempt is strictly
best-effort: no C toolchain, a sandboxed build host, or any compile
error just leaves the wheel pure-Python — the engine ladder builds (or
skips) the kernels at first use instead.
"""

from setuptools import setup
from setuptools.command.build_py import build_py


class build_py_with_native(build_py):
    def run(self):
        super().run()
        try:
            import sys

            sys.path.insert(0, "src")
            from repro.sim.native import build as native_build

            path, diagnostic = native_build.ensure_library()
            if path is not None:
                print(f"pre-built native kernels: {path}")
            else:
                print(f"native kernels not pre-built ({diagnostic}); "
                      "they will build on first use if a compiler exists")
        except Exception as exc:  # never fail the install over this
            print(f"native kernel pre-build skipped: {exc}")


setup(cmdclass={"build_py": build_py_with_native})
