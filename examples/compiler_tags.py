"""The section 2.3 locality analysis, explained reference by reference.

Reproduces the paper's figure 5 instrumented loop and prints, for every
array reference, the derived tags together with the *reasons* the
analysis recorded — the same information the paper's Sage++ pass encodes
into the trace calls.

Run:  python examples/compiler_tags.py
"""

from repro.compiler import (
    Array,
    ArrayRef,
    Loop,
    Program,
    analyze_nest,
    nest,
    var,
)


def fig5_program(n: int = 64) -> Program:
    i, j = var("i"), var("j")
    loop = nest(
        loops=[Loop("i", 0, n), Loop("j", 0, n)],
        body=[
            ArrayRef("A", (i, j)),
            ArrayRef("B", (j, i)),
            ArrayRef("B", (j, i + 1)),
            ArrayRef("X", (j,)),
            ArrayRef("Y", (i,)),
            ArrayRef("Y", (i,), is_write=True),
        ],
        name="figure-5",
    )
    arrays = [
        Array("A", (n, n)), Array("B", (n, n + 1)),
        Array("X", (n,)), Array("Y", (n,)),
    ]
    return Program("fig5", arrays, [loop])


def dusty_deck_program(n: int = 64) -> Program:
    """Patterns the analysis must *refuse* to tag."""
    i, j = var("i"), var("j")
    bad_order = nest(
        [Loop("i", 0, n), Loop("j", 0, n)],
        body=[ArrayRef("G", (i, j))],  # inner stride = leading dimension
        name="badly-ordered",
    )
    with_call = nest(
        [Loop("i", 0, n), Loop("j", 0, n)],
        body=[ArrayRef("X", (j,))],
        has_call=True,  # CALL in the body: no interprocedural analysis
        name="call-in-body",
    )
    time_loop = nest(
        [Loop("t", 0, 10, opaque=True), Loop("j", 0, n)],
        body=[ArrayRef("X", (j,))],  # reuse across t is invisible
        name="opaque-time-loop",
    )
    arrays = [Array("G", (n, n)), Array("X", (n,))]
    return Program("dusty", arrays, [bad_order, with_call, time_loop])


def show(program: Program) -> None:
    for item in program.nests:
        print(f"\nnest {item.name!r}:")
        tags = analyze_nest(item, program.arrays)
        for ref, tag in zip(item.all_refs, tags.all):
            subscripts = ",".join(str(s) for s in ref.subscripts)
            kind = "store" if ref.is_write else "load "
            print(f"  {kind} {ref.array}({subscripts})  "
                  f"T={int(tag.temporal)} S={int(tag.spatial)}")
            for reason in tag.reasons:
                print(f"        - {reason}")


def main() -> None:
    print("=== The paper's figure 5 loop ===")
    print("DO I / DO J:  Y(I) += (A(I,J)+B(J,I)+B(J,I+1)) * (X(J)+X(J))")
    show(fig5_program())

    print("\n=== Dusty-deck patterns the analysis cannot tag ===")
    show(dusty_deck_program())


if __name__ == "__main__":
    main()
