"""Mechanism walk-through on matrix-vector multiply (paper section 2.2).

MV is the paper's pedagogical example: the X vector is reused on every
outer iteration but flushed in between by the non-reusable sweep of A.
This script separates the two mechanisms — bounce-back cache (temporal)
and virtual lines (spatial) — and shows where each cycle goes.

Run:  python examples/matrix_vector_study.py
"""

from repro import simulate
from repro.core import presets
from repro.harness import format_table
from repro.workloads import get_trace


def main() -> None:
    trace = get_trace("MV", scale="paper")
    print(f"MV trace: {len(trace)} references "
          f"(X = 9.6 KB, larger than the 8 KB cache)\n")

    configurations = {
        "Standard": presets.standard(),
        "Stand.+Victim": presets.victim(),
        "Temp only (bounce-back)": presets.soft_temporal_only(),
        "Spat only (virtual lines)": presets.soft_spatial_only(),
        "Soft (both)": presets.soft(),
    }

    rows = {}
    results = {}
    for label, cache in configurations.items():
        r = simulate(cache, trace)
        results[label] = r
        rows[label] = {
            "AMAT": r.amat,
            "miss %": 100 * r.miss_ratio,
            "words/ref": r.traffic,
            "BB hits": r.hits_assist,
            "bounces": r.bounce_backs,
        }
    print(format_table(
        ["AMAT", "miss %", "words/ref", "BB hits", "bounces"], rows
    ))

    base = results["Standard"]
    soft = results["Soft (both)"]
    print(f"\nWhat happened:")
    print(f"  - The victim cache alone recovers conflict misses only: "
          f"AMAT {results['Stand.+Victim'].amat:.2f} vs {base.amat:.2f}.")
    print(f"  - The bounce-back cache keeps X alive across outer "
          f"iterations: {results['Temp only (bounce-back)'].bounce_backs} "
          f"bounces, AMAT {results['Temp only (bounce-back)'].amat:.2f}.")
    print(f"  - Virtual lines halve A's compulsory misses: "
          f"AMAT {results['Spat only (virtual lines)'].amat:.2f}.")
    print(f"  - Combined: AMAT {soft.amat:.2f} "
          f"({100 * (1 - soft.amat / base.amat):.0f}% faster memory), "
          f"{100 * (base.misses - soft.misses) / base.misses:.0f}% of "
          f"misses removed, traffic {base.traffic:.2f} -> "
          f"{soft.traffic:.2f} words/ref.")


if __name__ == "__main__":
    main()
