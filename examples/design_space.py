"""Design-space exploration with CacheSpec.derive and run_sweep.

Every paper configuration is a flag combination on one model, so
sweeping the hardware design space is a few lines: this script grids
(virtual line size) x (bounce-back capacity) on the suite and prints the
geomean AMAT per design point — the kind of study a cache architect
would run before committing gates.

The grid goes through the sweep engine: declarative ``CacheSpec``
columns, a process pool (``jobs=0`` = all cores), and the on-disk
result cache, so re-running after editing the grid only simulates the
new design points.

Run:  python examples/design_space.py
"""

from repro import CacheSpec
from repro.harness import format_table, run_sweep
from repro.metrics import geometric_mean
from repro.workloads import suite_traces

VIRTUAL_LINES = (None, 64, 128)
BOUNCE_BACK_LINES = (0, 4, 8, 16)


def label_vl(vl):
    return "VL off" if vl is None else f"VL {vl}B"


def main() -> None:
    base = CacheSpec.of("soft_config")
    configs = {
        f"BB={bb}|{label_vl(vl)}": base.derive(
            bounce_back_lines=bb,
            virtual_line_size=vl,
            use_temporal=bb > 0,
        )
        for bb in BOUNCE_BACK_LINES
        for vl in VIRTUAL_LINES
    }
    sweep = run_sweep(suite_traces("paper"), configs, jobs=0)

    rows = {}
    best = (None, float("inf"))
    for bb in BOUNCE_BACK_LINES:
        cells = {}
        for vl in VIRTUAL_LINES:
            column = f"BB={bb}|{label_vl(vl)}"
            amats = [
                row[column].amat for row in sweep.results.values()
            ]
            score = geometric_mean(amats)
            cells[label_vl(vl)] = score
            if score < best[1]:
                best = (f"{bb} BB lines, {label_vl(vl)}", score)
        rows[f"BB={bb}"] = cells

    print("Geomean AMAT across the nine benchmarks "
          "(8 KB direct-mapped, 32 B lines):\n")
    print(format_table([label_vl(vl) for vl in VIRTUAL_LINES], rows))
    print(f"\nBest geomean design point: {best[0]} "
          f"(geomean AMAT {best[1]:.3f})")
    print("Note how the geomean optimum sits at a larger virtual line "
          "than the paper's 64 B: the average hides that 128 B regresses "
          "SpMV (figure 8a).  The paper picks 64 B as the max-min safe "
          "point — no benchmark loses — which is exactly the trade-off "
          "this grid lets you see.")


if __name__ == "__main__":
    main()
