"""Blocking and data copying under software assistance (sections 4.2-4.3).

Two experiments:

1. Blocked matrix-vector multiply across block sizes (figure 11a):
   pollution forces small blocks on a standard cache; the
   software-assisted cache keeps large blocks profitable.
2. Blocked matrix-matrix multiply with/without copying the reused block
   to a contiguous local array, across leading dimensions (figure 11b):
   copying is erratic on a standard cache, consistently worthwhile on a
   software-assisted one.

Run:  python examples/blocking_study.py
"""

from repro import simulate
from repro.core import presets
from repro.harness import format_table
from repro.workloads import get_blocked_mm_trace, get_blocked_mv_trace


def block_size_experiment() -> None:
    print("Blocked MV: AMAT vs block size (B doubles of X per block)\n")
    rows = {}
    for block in (10, 50, 100, 500, 1000, 2000):
        trace = get_blocked_mv_trace(block, scale="paper")
        rows[f"B={block}"] = {
            "Standard": simulate(presets.standard(), trace).amat,
            "Soft": simulate(presets.soft(), trace).amat,
        }
    print(format_table(["Standard", "Soft"], rows))
    best_std = min(rows, key=lambda b: rows[b]["Standard"])
    best_soft = min(rows, key=lambda b: rows[b]["Soft"])
    print(f"\nBest block for the standard cache: {best_std}; "
          f"for the software-assisted cache: {best_soft}.")
    print("Software assistance lets blocked algorithms use block sizes "
          "closer to the theoretical optimum (cache capacity).")


def copying_experiment() -> None:
    print("\nBlocked MM: data copying across leading dimensions\n")
    rows = {}
    for ld in range(116, 127, 2):
        cells = {}
        for copying, label in ((False, "no copy"), (True, "copy")):
            trace = get_blocked_mm_trace(ld, copying, scale="paper")
            cells[f"Stand {label}"] = simulate(presets.standard(), trace).amat
            cells[f"Soft {label}"] = simulate(presets.soft(), trace).amat
        rows[f"ld={ld}"] = cells
    print(format_table(
        ["Stand no copy", "Stand copy", "Soft no copy", "Soft copy"], rows
    ))
    print("\nWithout assistance, whether copying pays depends on the "
          "leading dimension's interference pattern; with assistance the "
          "local array survives the refill and copying is a safe default.")


def main() -> None:
    block_size_experiment()
    copying_experiment()


if __name__ == "__main__":
    main()
