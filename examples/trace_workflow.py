"""Trace-centric workflow: save, reload, attribute, and bound.

Shows the library as a day-to-day analysis tool rather than a figure
factory: persist a trace to disk, reload it elsewhere, find the static
load/stores responsible for the misses, and compare the design against
the Belady-optimal replacement bound.

Run:  python examples/trace_workflow.py
"""

import tempfile
from pathlib import Path

from repro import simulate
from repro.core import presets
from repro.harness import format_table
from repro.memtrace import load_trace, save_trace
from repro.metrics import attribute
from repro.sim import CacheGeometry, MemoryTiming
from repro.sim.belady import simulate_belady
from repro.workloads import get_trace


def main() -> None:
    trace = get_trace("SpMV", scale="paper")

    # --- persist & reload -------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "spmv.npz"
        save_trace(trace, path)
        reloaded = load_trace(path)
        print(f"round-trip: {len(reloaded)} references, "
              f"{path.stat().st_size // 1024} KiB on disk")
        assert (reloaded.addresses == trace.addresses).all()

    # --- who causes the misses? -------------------------------------------
    profile = attribute(presets.standard(), trace)
    print(f"\n{profile.static_instructions} static load/stores; "
          f"{profile.instructions_covering(0.9)} of them cause 90% of "
          f"the {profile.total_misses} misses:")
    rows = {
        f"ref_id={p.ref_id}": {
            "refs": p.refs, "misses": p.misses, "miss %": 100 * p.miss_ratio,
        }
        for p in profile.top(4)
    }
    print(format_table(["refs", "misses", "miss %"], rows))
    print("(ref_ids follow source order: Index, A and the gathered X "
          "carry almost all misses — exactly the references the paper's "
          "tags single out.)")

    # --- against the optimal bound ----------------------------------------
    fully_associative = CacheGeometry(8 * 1024, 32, 256)
    opt = simulate_belady(trace, fully_associative, MemoryTiming())
    lru = simulate(presets.standard(), trace)
    soft = simulate(presets.soft(), trace)
    print(f"\nmiss ratio: LRU {lru.miss_ratio:.3f}  "
          f"OPT-FA {opt.miss_ratio:.3f}  Soft {soft.miss_ratio:.3f}")
    print("Soft lands below even fully-associative Belady replacement: "
          "virtual lines remove compulsory misses, which no replacement "
          "policy can touch.")


if __name__ == "__main__":
    main()
