"""Scarce locality and user directives on sparse codes (section 4.1).

Sparse matrix-vector multiply reuses each X element only as often as its
row has non-zeros, through an indirection no compiler can analyse.  The
paper's answer: a *user directive* tags X temporal by hand; the compiler
still tags the matrix and index arrays spatial/non-temporal, so their
streams never pollute past the bounce-back cache.

This script builds SpMV twice — with and without the directive — and
shows the directive is what unlocks the temporal mechanism.

Run:  python examples/sparse_directives.py
"""

import numpy as np

from repro import simulate
from repro.core import presets
from repro.compiler import Array, ArrayRef, Loop, Program, generate_trace, nest, var
from repro.harness import format_table


def build_spmv(tag_x: bool, n_rows=3000, nnz=12, n_cols=2500, seed=7) -> Program:
    """CSC sparse matrix-vector multiply over a banded random matrix."""
    rng = np.random.default_rng(seed)
    band = n_rows // 5
    diag = (np.arange(n_cols) * n_rows) // n_cols
    jitter = rng.integers(-band // 2, band // 2 + 1, size=(n_cols, nnz))
    index = np.clip(diag[:, None] + jitter, 0, n_rows - 1)
    index.sort(axis=1)
    table = tuple(int(v) for v in index.reshape(-1))

    j1, j2 = var("j1"), var("j2")
    position = j1 * nnz + j2
    x_ref = ArrayRef(
        "X", (position,), indirect=table,
        temporal=True if tag_x else None,  # <- the user directive
    )
    loop = nest(
        [Loop("j1", 0, n_cols), Loop("j2", 0, nnz)],
        body=[ArrayRef("Index", (position,)), ArrayRef("A", (position,)), x_ref],
        pre=[ArrayRef("D", (j1,)), ArrayRef("D", (j1 + 1,)),
             ArrayRef("Y", (j1,))],
        post=[ArrayRef("Y", (j1,), is_write=True)],
        name="spmv",
    )
    arrays = [
        Array("Y", (n_cols,)), Array("D", (n_cols + 1,)),
        Array("A", (n_cols * nnz,)), Array("Index", (n_cols * nnz,)),
        Array("X", (n_rows,)),
    ]
    label = "directive" if tag_x else "no-directive"
    return Program(f"SpMV-{label}", arrays, [loop])


def main() -> None:
    rows = {}
    for tag_x in (False, True):
        trace = generate_trace(build_spmv(tag_x), seed=0)
        label = "with directive" if tag_x else "without directive"
        rows[label] = {
            "Standard": simulate(presets.standard(), trace).amat,
            "Soft": simulate(presets.soft(), trace).amat,
        }
    print("SpMV AMAT — the user directive tags X 'temporal' through the "
          "indirection the compiler cannot see:\n")
    print(format_table(["Standard", "Soft"], rows))
    without = rows["without directive"]["Soft"]
    with_d = rows["with directive"]["Soft"]
    print(f"\nThe directive buys a further "
          f"{100 * (1 - with_d / without):.0f}% of AMAT on the "
          f"software-assisted cache (and costs nothing on the standard "
          f"one, which ignores tags).")


if __name__ == "__main__":
    main()
