"""Software-assisted prefetching through the bounce-back cache (§4.4).

Compares blind prefetch-on-miss against the paper's progressive scheme
(prefetch only on spatial-tagged misses; a hit on a prefetched line in
the bounce-back cache promotes it and fetches the next), and shows the
latency sensitivity the paper discusses.

Run:  python examples/prefetch_study.py
"""

from repro import simulate
from repro.core import presets
from repro.harness import format_table
from repro.sim import MemoryTiming
from repro.workloads import BENCHMARK_ORDER, suite_traces


def prefetch_comparison() -> None:
    print("AMAT across the suite (paper scale):\n")
    rows = {}
    for name, trace in suite_traces("paper").items():
        standard_pf = simulate(presets.standard_prefetch(), trace)
        soft_pf = simulate(presets.soft_prefetch(), trace)
        rows[name] = {
            "Standard": simulate(presets.standard(), trace).amat,
            "Stand+Pf": standard_pf.amat,
            "Soft": simulate(presets.soft(), trace).amat,
            "Soft+Pf": soft_pf.amat,
            "useful pf %": 100 * (
                soft_pf.prefetch_hits / max(1, soft_pf.prefetches_issued)
            ),
        }
    print(format_table(
        ["Standard", "Stand+Pf", "Soft", "Soft+Pf", "useful pf %"], rows
    ))


def latency_sensitivity() -> None:
    print("\nPrefetching vs memory latency (MV):\n")
    from repro.workloads import get_trace

    trace = get_trace("MV", "paper")
    rows = {}
    for latency in (5, 10, 20, 30, 40):
        timing = MemoryTiming(latency=latency)
        rows[f"latency={latency}"] = {
            "Soft": simulate(presets.soft(timing=timing), trace).amat,
            "Soft+Pf": simulate(
                presets.soft_prefetch(timing=timing), trace
            ).amat,
        }
    print(format_table(["Soft", "Soft+Pf"], rows))
    print("\nAt low latency prefetching has nothing to hide; at high "
          "latency the progressive single-line lookahead struggles to "
          "stay ahead — exactly the window the paper describes.")


def main() -> None:
    prefetch_comparison()
    latency_sensitivity()


if __name__ == "__main__":
    main()
