"""Quickstart: simulate a loop nest on a standard vs software-assisted cache.

Builds the paper's running example (matrix-vector multiply), lets the
compiler substrate derive the one-bit temporal/spatial tags, generates
the instrumented trace, and compares the two cache designs.

Run:  python examples/quickstart.py
"""

from repro import CacheSpec, simulate
from repro.compiler import (
    Array,
    ArrayRef,
    Loop,
    Program,
    analyze_nest,
    generate_trace,
    nest,
    var,
)


def main() -> None:
    n, rows = 1200, 40
    j1, j2 = var("j1"), var("j2")

    # DO j1: reg = Y(j1); DO j2: reg += A(j2,j1) * X(j2); Y(j1) = reg
    mv = nest(
        loops=[Loop("j1", 0, rows), Loop("j2", 0, n)],
        body=[ArrayRef("A", (j2, j1)), ArrayRef("X", (j2,))],
        pre=[ArrayRef("Y", (j1,))],
        post=[ArrayRef("Y", (j1,), is_write=True)],
        name="matrix-vector",
    )
    program = Program(
        "MV",
        arrays=[Array("Y", (n,)), Array("A", (n, n)), Array("X", (n,))],
        items=[mv],
    )

    print("Compiler tags (section 2.3 analysis):")
    tags = analyze_nest(mv, program.arrays)
    for ref, tag in zip(mv.all_refs, tags.all):
        subscripts = ",".join(str(s) for s in ref.subscripts)
        print(
            f"  {ref.array}({subscripts}):"
            f" temporal={tag.temporal} spatial={tag.spatial}"
        )

    trace = generate_trace(program, seed=42)
    print(f"\nInstrumented trace: {len(trace)} references")

    standard = simulate(CacheSpec.of("standard").build(), trace)
    soft = simulate(CacheSpec.of("soft").build(), trace)

    print(f"\n{'':>12}  {'AMAT':>7}  {'miss %':>7}  {'words/ref':>9}")
    for label, r in (("Standard", standard), ("Soft", soft)):
        print(
            f"{label:>12}  {r.amat:7.3f}  {100 * r.miss_ratio:7.2f}"
            f"  {r.traffic:9.3f}"
        )
    reduction = 100 * (standard.misses - soft.misses) / standard.misses
    print(f"\nMiss reduction: {reduction:.0f}% "
          f"(the paper reports up to 62% for MV)")


if __name__ == "__main__":
    main()
